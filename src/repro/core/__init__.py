"""The paper's primary contribution: core times, skylines, enumeration."""

from repro.core.coretime import (
    CoreTimeResult,
    VertexCoreTimeIndex,
    compute_core_times,
    compute_vertex_core_times,
    core_time_by_rescan,
)
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.enumerate_ref import enumerate_temporal_kcores_ref
from repro.core.index import (
    CoreIndex,
    CoreIndexRegistry,
    DEFAULT_REGISTRY,
    SpillPolicy,
    get_core_index,
    load_skyline,
    load_vct,
)
from repro.core.linkedlist import WindowList
from repro.core.maintenance import StreamingCoreService
from repro.core.multik import build_core_indexes, compute_core_times_multi
from repro.core.query import ENGINES, TimeRangeCoreQuery
from repro.core.results import EnumerationResult, TemporalKCore
from repro.core.vertex_sets import (
    distinct_vertex_sets,
    enumerate_vertex_sets,
    vertex_set_compression,
)
from repro.core.windows import ActiveWindow, EdgeCoreSkyline, build_active_windows

__all__ = [
    "ActiveWindow",
    "CoreIndex",
    "CoreIndexRegistry",
    "DEFAULT_REGISTRY",
    "CoreTimeResult",
    "EdgeCoreSkyline",
    "ENGINES",
    "EnumerationResult",
    "SpillPolicy",
    "StreamingCoreService",
    "TemporalKCore",
    "TimeRangeCoreQuery",
    "VertexCoreTimeIndex",
    "WindowList",
    "build_active_windows",
    "build_core_indexes",
    "compute_core_times",
    "compute_core_times_multi",
    "compute_vertex_core_times",
    "core_time_by_rescan",
    "distinct_vertex_sets",
    "enumerate_temporal_kcores",
    "enumerate_temporal_kcores_base",
    "enumerate_temporal_kcores_ref",
    "enumerate_vertex_sets",
    "get_core_index",
    "load_skyline",
    "load_vct",
    "vertex_set_compression",
]
