"""Result types for temporal k-core enumeration.

A temporal k-core is identified by its edge set (Section II); its Tightest
Time Interval (Definition 3) is the minimal window spanning those edges
and is in one-to-one correspondence with the core.  ``|R|`` — the metric
the paper's complexity analysis and Figure 4 are built on — is the *total
number of edges across all distinct resulting cores*.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterator
from dataclasses import dataclass, field

from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class TemporalKCore:
    """One distinct temporal k-core.

    Attributes
    ----------
    tti:
        The tightest time interval ``(ts, te)`` of the core.
    edge_ids:
        Ids of the temporal edges forming the core, in discovery order.
    """

    tti: tuple[int, int]
    edge_ids: tuple[int, ...]

    @property
    def num_edges(self) -> int:
        return len(self.edge_ids)

    def edge_set(self) -> frozenset[int]:
        """Canonical identity of the core (frozen set of edge ids)."""
        return frozenset(self.edge_ids)

    def edge_triples(
        self, graph: TemporalGraph
    ) -> list[tuple[Hashable, Hashable, int]]:
        """Edges as ``(label_u, label_v, t)`` triples."""
        return [
            (graph.label_of(u), graph.label_of(v), t)
            for u, v, t in (graph.edges[eid] for eid in self.edge_ids)
        ]

    def vertices(self, graph: TemporalGraph) -> set[int]:
        """Internal vertex ids spanned by the core's edges."""
        members: set[int] = set()
        for eid in self.edge_ids:
            u, v, _ = graph.edges[eid]
            members.add(u)
            members.add(v)
        return members

    def vertex_labels(self, graph: TemporalGraph) -> set[Hashable]:
        return {graph.label_of(u) for u in self.vertices(graph)}


#: Streaming consumer signature: ``(tti_start, tti_end, edge_ids_prefix)``.
#: ``edge_ids_prefix`` is a *live, growing* list — consumers that keep it
#: must copy; the enumerator materialises a copy itself in collect mode.
ResultCallback = Callable[[int, int, list[int]], None]


@dataclass
class EnumerationResult:
    """Aggregate outcome of one enumeration run.

    ``cores`` is populated only in collect mode; counters are always
    maintained so benchmark runs can stream without materialising results.
    ``completed`` is false when a deadline aborted the run (the paper's
    6-hour DNFs on OTCD are reported this way).
    """

    algorithm: str
    k: int
    time_range: tuple[int, int]
    num_results: int = 0
    total_edges: int = 0
    completed: bool = True
    cores: list[TemporalKCore] | None = None
    extra: dict[str, float] = field(default_factory=dict)

    def record(self, ts: int, te: int, edge_ids: list[int], collect: bool) -> None:
        """Account one result (and store it when collecting)."""
        self.num_results += 1
        self.total_edges += len(edge_ids)
        if collect:
            if self.cores is None:
                self.cores = []
            self.cores.append(TemporalKCore((ts, te), tuple(edge_ids)))

    def edge_sets(self) -> set[frozenset[int]]:
        """Set of canonical core identities (requires collect mode)."""
        if self.cores is None:
            raise ValueError("results were not collected; rerun with collect=True")
        return {core.edge_set() for core in self.cores}

    def by_tti(self) -> dict[tuple[int, int], TemporalKCore]:
        """Cores keyed by TTI (requires collect mode)."""
        if self.cores is None:
            raise ValueError("results were not collected; rerun with collect=True")
        return {core.tti: core for core in self.cores}

    def __iter__(self) -> Iterator[TemporalKCore]:
        if self.cores is None:
            raise ValueError("results were not collected; rerun with collect=True")
        return iter(self.cores)

    def __len__(self) -> int:
        return self.num_results
