"""The seed linked-list enumerator, kept as the oracle (Algorithms 4–5).

This is the pre-columnar Enum implementation: per-window
:class:`~repro.core.windows.ActiveWindow` cells bucketed by activation
and start time, the doubly linked ``L_ts`` of
:mod:`repro.core.linkedlist` spliced between start times, and the
cell-by-cell AS-Output walk.  The serving path now runs the columnar
core (:mod:`repro.serve.columnar`); this module plays the same role
``coretime_ref`` plays for the kernel — an independently structured
implementation the property suite checks the fast path against, and
the slow side of the PR 5 enumeration benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.coretime import compute_core_times
from repro.core.linkedlist import WindowList
from repro.core.results import EnumerationResult, ResultCallback
from repro.core.windows import ActiveWindow, EdgeCoreSkyline
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.timing import Deadline


def _bucket_window_arrays(
    eids: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    actives: np.ndarray,
    ts_lo: int,
    ts_hi: int,
) -> tuple[list[list[ActiveWindow]], list[list[ActiveWindow]]]:
    """Build the activation (``Ba``) and start (``Bs``) buckets.

    Consumes the columnar ``(eid, start, end, active)`` slice of
    :meth:`EdgeCoreSkyline.active_window_arrays` directly: one stable
    end-time argsort (Algorithm 5 line 8) orders the windows, and the
    :class:`ActiveWindow` cells are created straight into their buckets
    in ascending end-time order, the precondition of the roving-cursor
    insertion.
    """
    order = np.argsort(ends, kind="stable").tolist()
    eids_list = eids.tolist()
    starts_list = starts.tolist()
    ends_list = ends.tolist()
    actives_list = actives.tolist()
    span = ts_hi - ts_lo + 1
    activation: list[list[ActiveWindow]] = [[] for _ in range(span)]
    start: list[list[ActiveWindow]] = [[] for _ in range(span)]
    for i in order:
        window = ActiveWindow(
            starts_list[i], ends_list[i], eids_list[i], actives_list[i]
        )
        activation[window.active - ts_lo].append(window)
        start[window.start - ts_lo].append(window)
    return activation, start


def _as_output(
    window_list: WindowList,
    ts: int,
    result: EnumerationResult,
    collect: bool,
    on_result: ResultCallback | None,
) -> None:
    """AS-Output (Algorithm 4): report all cores starting exactly at ``ts``.

    Walks ``L_ts`` accumulating edges; a result is emitted at the last
    window of each end-time group once a window with start time ``ts``
    has been seen (the ``valid`` flag — Lemma 6).
    """
    accumulated: list[int] = []
    valid = False
    window = window_list.first
    while window is not None:
        accumulated.append(window.edge_id)
        if window.start == ts:
            valid = True
        nxt = window.next
        if valid and (nxt is None or nxt.end != window.end):
            result.record(ts, window.end, accumulated, collect)
            if on_result is not None:
                on_result(ts, window.end, accumulated)
        window = nxt


def enumerate_active_window_arrays_ref(
    k: int,
    ts_lo: int,
    ts_hi: int,
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    *,
    collect: bool = True,
    on_result: ResultCallback | None = None,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Run the linked-list Enum over a prepared columnar window slice."""
    result = EnumerationResult("enum-ref", k, (ts_lo, ts_hi))
    if collect:
        result.cores = []
    eids, starts, ends, actives = arrays
    if not len(eids):
        return result
    activation, start = _bucket_window_arrays(
        eids, starts, ends, actives, ts_lo, ts_hi
    )

    window_list = WindowList()
    for current_ts in range(ts_lo, ts_hi + 1):
        if deadline is not None and deadline.expired():
            result.completed = False
            break
        offset = current_ts - ts_lo
        if current_ts > ts_lo:
            for window in start[offset - 1]:
                window_list.delete(window)
        window_list.insert_sorted_batch(activation[offset])
        if start[offset]:
            _as_output(window_list, current_ts, result, collect, on_result)
    return result


def enumerate_temporal_kcores_ref(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    skyline: EdgeCoreSkyline | None = None,
    collect: bool = True,
    on_result: ResultCallback | None = None,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Enumerate all distinct temporal k-cores with the oracle Enum.

    Same parameters and semantics as
    :func:`repro.core.enumerate.enumerate_temporal_kcores`; kept
    independent of the columnar core so the two can check each other.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    if skyline is None:
        skyline = compute_core_times(graph, k, ts_lo, ts_hi).ecs
        assert skyline is not None
    elif (
        skyline.k != k
        or skyline.span[0] > ts_lo
        or skyline.span[1] < ts_hi
    ):
        raise InvalidParameterError(
            f"skyline computed for k={skyline.k}, span={skyline.span}; "
            f"query wants k={k}, span=({ts_lo}, {ts_hi}) — the skyline "
            "span must contain the query range"
        )

    arrays = skyline.active_window_arrays(ts_lo, ts_hi)
    return enumerate_active_window_arrays_ref(
        k,
        ts_lo,
        ts_hi,
        arrays,
        collect=collect,
        on_result=on_result,
        deadline=deadline,
    )
