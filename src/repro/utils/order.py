"""Small ordering helpers used by the core algorithms.

The enumeration pipeline relies on two classic tricks to stay within its
theoretical bounds:

* counting sort keyed by (small, dense) integer timestamps, used to order
  minimal core windows by end time in linear time (Algorithm 5, line 8);
* selection of the k-th smallest element of a short list, used by the
  core-time fixpoint operator (one selection per vertex re-evaluation).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")


def kth_smallest(values: Sequence[int], k: int) -> int:
    """Return the k-th smallest value (1-based) of ``values``.

    Raises :class:`ValueError` when ``k`` is out of ``1..len(values)``.
    The implementation picks between a full sort and a bounded heap based
    on ``k`` — for the core-time operator ``k`` is usually much smaller
    than the degree, where ``heapq.nsmallest`` wins.
    """
    n = len(values)
    if k < 1 or k > n:
        raise ValueError(f"k={k} out of range for {n} values")
    if k == 1:
        return min(values)
    if k == n:
        return max(values)
    if 3 * k < n:
        return heapq.nsmallest(k, values)[-1]
    return sorted(values)[k - 1]


#: Sparse cut-over: fall back to timsort when the key span exceeds this
#: multiple of the item count (bucket allocation would dominate).
_SPARSE_SPAN_FACTOR = 8


def counting_sort_by(
    items: Iterable[T],
    key: Callable[[T], int],
    lo: int,
    hi: int,
) -> list[T]:
    """Stable sort of ``items`` by an integer key in ``[lo, hi]``.

    Dense key ranges use a counting sort — ``O(len(items) + hi - lo)``
    time, which keeps the window ordering step of the enumeration linear
    in the skyline size.  When the span is much wider than the item count
    (sparse windows), allocating one bucket per key would dominate, so
    the sort falls back to a decorate-and-timsort pass —
    ``O(len(items) log len(items))`` with no span-sized allocation.  Both
    paths are stable and validate every key against ``[lo, hi]``.
    """
    if hi < lo:
        raise ValueError(f"empty key range [{lo}, {hi}]")
    materialised = list(items)
    span = hi - lo + 1
    if span > _SPARSE_SPAN_FACTOR * len(materialised) + 16:
        decorated: list[tuple[int, int]] = []
        for position, item in enumerate(materialised):
            value = key(item)
            if value < lo or value > hi:
                raise ValueError(f"key {value} outside [{lo}, {hi}]")
            decorated.append((value, position))
        decorated.sort()
        return [materialised[position] for _, position in decorated]
    buckets: list[list[T]] = [[] for _ in range(span)]
    for item in materialised:
        value = key(item)
        if value < lo or value > hi:
            raise ValueError(f"key {value} outside [{lo}, {hi}]")
        buckets[value - lo].append(item)
    ordered: list[T] = []
    for bucket in buckets:
        ordered.extend(bucket)
    return ordered


def merge_intervals(intervals: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge possibly-overlapping closed integer intervals.

    Adjacent intervals (``hi + 1 == next lo``) are coalesced as well, which
    is what the OTCD pruning bookkeeping wants: pruned end-time ranges form
    a set of integers, not a set of real segments.
    """
    ordered = sorted(intervals)
    merged: list[tuple[int, int]] = []
    for lo, hi in ordered:
        if hi < lo:
            raise ValueError(f"interval ({lo}, {hi}) is empty")
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def interval_contains(intervals: Sequence[tuple[int, int]], value: int) -> bool:
    """Binary-search a sorted, merged interval list for ``value``."""
    lo, hi = 0, len(intervals) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        a, b = intervals[mid]
        if value < a:
            hi = mid - 1
        elif value > b:
            lo = mid + 1
        else:
            return True
    return False
