"""Shared utilities: ordering primitives, timers, and deadlines."""

from repro.utils.order import (
    counting_sort_by,
    interval_contains,
    kth_smallest,
    merge_intervals,
)
from repro.obs.timing import Deadline, Stopwatch, time_call

__all__ = [
    "Deadline",
    "Stopwatch",
    "counting_sort_by",
    "interval_contains",
    "kth_smallest",
    "merge_intervals",
    "time_call",
]
