"""Small helpers for the flat int64 arrays the columnar layers share.

The native VCT/ECS representation (offset-indexed flat arrays, see
:mod:`repro.core.windows` and :mod:`repro.core.coretime`) is fed from
several sources — freshly computed numpy arrays, ``array('q')`` buffers,
and zero-copy ``memoryview`` sections of an mmapped store blob.  These
helpers normalise all of them to numpy int64 views without copying
whenever the source already holds native-endian int64 bytes.
"""

from __future__ import annotations

import numpy as np


def as_int64_array(values) -> np.ndarray:
    """``values`` as a 1-D int64 ndarray, zero-copy where possible.

    Accepts ndarrays (pass through), buffer providers holding native
    int64 (``memoryview.cast("q")`` store sections, ``array('q')`` —
    wrapped without copying; mmap-backed views come back read-only,
    which is fine for the immutable index layers) and plain Python
    sequences (converted).
    """
    if isinstance(values, np.ndarray):
        if values.dtype == np.int64 and values.ndim == 1:
            return values
        return np.ascontiguousarray(values, dtype=np.int64).reshape(-1)
    try:
        return np.frombuffer(values, dtype=np.int64)
    except TypeError:
        return np.asarray(values, dtype=np.int64).reshape(-1)


def flatten_pairs(
    pairs_by_segment,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR-flatten per-segment ``(a, b)`` pair sequences.

    Returns ``(offsets, a, b)`` int64 arrays with ``offsets`` holding
    ``len(pairs_by_segment) + 1`` entries — the conversion surface the
    list-based VCT/ECS constructors share.
    """
    counts = np.fromiter(
        (len(s) for s in pairs_by_segment), np.int64, len(pairs_by_segment)
    )
    offsets = np.zeros(len(pairs_by_segment) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    col_a = np.empty(total, dtype=np.int64)
    col_b = np.empty(total, dtype=np.int64)
    position = 0
    for segment in pairs_by_segment:
        for a, b in segment:
            col_a[position] = a
            col_b[position] = b
            position += 1
    return offsets, col_a, col_b


def offsets_from_keys(keys: np.ndarray, count: int) -> np.ndarray:
    """CSR offsets (``count + 1`` entries) for sorted segment ``keys``.

    ``keys[i]`` is the segment id of flat element ``i`` (ascending);
    the result ``o`` satisfies ``keys[o[s]:o[s+1]] == s`` for every
    segment ``s`` in ``range(count)``.
    """
    offsets = np.zeros(count + 1, dtype=np.int64)
    if len(keys):
        np.cumsum(np.bincount(keys, minlength=count), out=offsets[1:])
    return offsets
