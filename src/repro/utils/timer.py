"""Deprecated shim — timing primitives moved to :mod:`repro.obs.timing`.

This module kept the serving stack's stopwatch/deadline primitives
until PR 7 unified all timing under the observability layer.  It now
re-exports the same names from their new home and warns on import;
update imports to ``repro.obs.timing`` (or ``repro.obs``).
"""

from __future__ import annotations

import warnings

from repro.obs.timing import Deadline, Stopwatch, now, time_call

__all__ = ["Deadline", "Stopwatch", "now", "time_call"]

warnings.warn(
    "repro.utils.timer moved to repro.obs.timing; "
    "this re-export shim will be removed",
    DeprecationWarning,
    stacklevel=2,
)
