"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Stopwatch:
    """A restartable wall-clock stopwatch with named laps.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> sw.lap("sum")
    >>> sw.elapsed >= 0.0
    True
    """

    _started_at: float | None = None
    _accumulated: float = 0.0
    laps: dict[str, float] = field(default_factory=dict)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self._accumulated += time.perf_counter() - self._started_at
        self._started_at = None
        return self._accumulated

    def lap(self, name: str) -> None:
        """Record the elapsed time so far under ``name`` without stopping."""
        self.laps[name] = self.elapsed

    @property
    def elapsed(self) -> float:
        total = self._accumulated
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    def reset(self) -> None:
        self._started_at = None
        self._accumulated = 0.0
        self.laps.clear()


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[Any, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


class Deadline:
    """A soft deadline used to emulate the paper's 6-hour time limit.

    Algorithms poll :meth:`expired` at coarse-grained checkpoints (once per
    start time, typically) and abort with a DNF marker instead of raising.
    """

    def __init__(self, seconds: float | None):
        self._seconds = seconds
        self._t0 = time.perf_counter()

    def expired(self) -> bool:
        if self._seconds is None:
            return False
        return time.perf_counter() - self._t0 > self._seconds

    @property
    def remaining(self) -> float | None:
        if self._seconds is None:
            return None
        return max(0.0, self._seconds - (time.perf_counter() - self._t0))
