"""Dataset statistics — the generated side of Table III.

Computes, for any temporal graph, the four columns the paper reports:
``|V|``, ``|E|``, ``tmax`` (number of distinct timestamps) and ``kmax``
(the maximum core number over the whole-span simple graph).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.static_core import core_decomposition
from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class DatasetStats:
    """Table III columns for one graph, plus the degree average used in
    the ``|VCT| * deg_avg`` complexity term."""

    num_vertices: int
    num_edges: int
    tmax: int
    kmax: int
    avg_degree: float

    def as_row(self) -> tuple[int, int, int, int]:
        return (self.num_vertices, self.num_edges, self.tmax, self.kmax)


def compute_stats(graph: TemporalGraph) -> DatasetStats:
    """Compute the Table III statistics of a temporal graph."""
    adjacency: dict[int, set[int]] = {}
    for u, v, _ in graph.edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    cores = core_decomposition(adjacency)
    kmax = max(cores.values(), default=0)
    degrees = graph.degree_statistics()
    return DatasetStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        tmax=graph.tmax,
        kmax=kmax,
        avg_degree=degrees["avg"],
    )


def default_k(stats: DatasetStats, fraction: float = 0.3) -> int:
    """The paper's parameterisation: ``k = fraction * kmax`` (>= 2).

    The default fraction (30%) matches the paper's default; results are
    rounded to the nearest integer and clamped below by 2 because k = 1
    cores are degenerate (every edge forms one).
    """
    return max(2, round(stats.kmax * fraction))


def default_range_width(stats: DatasetStats, fraction: float = 0.1) -> int:
    """The paper's range width: ``fraction * tmax`` (at least 1)."""
    return max(1, round(stats.tmax * fraction))
