"""The running example of the paper (Figure 1) and its published answers.

The 9-vertex, 14-edge temporal graph is reconstructed from Table II (which
lists every edge with its timestamp).  The module also transcribes the
published ground truth — Table I (vertex core time index for k=2),
Table II (edge core window skyline) and Figure 2 (the temporal 2-cores of
query range [1, 4]) — so the test suite can check the implementation
against the paper bit-for-bit.
"""

from __future__ import annotations

from repro.graph.temporal_graph import TemporalGraph

#: ``(u, v, t)`` triples of Figure 1, as listed in Table II.
PAPER_EXAMPLE_EDGES: tuple[tuple[str, str, int], ...] = (
    ("v2", "v9", 1),
    ("v1", "v4", 2),
    ("v2", "v3", 2),
    ("v1", "v2", 3),
    ("v2", "v4", 3),
    ("v3", "v9", 4),
    ("v4", "v8", 4),
    ("v1", "v6", 5),
    ("v1", "v7", 5),
    ("v2", "v8", 5),
    ("v6", "v7", 5),
    ("v1", "v3", 6),
    ("v3", "v5", 6),
    ("v1", "v5", 7),
)

#: Table I — vertex core time index for k = 2 over the full range [1, 7].
#: Each entry is ``(start_time, core_time)``; ``None`` encodes infinity.
#:
#: NOTE: the published Table I lists ``v3: ..., [4, ∞]``, which contradicts
#: the paper's own Table II (edge ``(v1, v3, 6)`` has minimal core window
#: ``[6, 7]``, so ``CT_6(v3) = 7`` must be finite).  Brute-force core-time
#: computation confirms ``CT_ts(v3) = 7`` for ts in 3..6 and infinity only
#: from ts = 7; we transcribe the *corrected* entry ``(7, None)`` here and
#: flag the typo in EXPERIMENTS.md.
PAPER_VCT_K2: dict[str, tuple[tuple[int, int | None], ...]] = {
    "v1": ((1, 3), (3, 5), (6, 7), (7, None)),
    "v2": ((1, 3), (3, 5), (4, None)),
    "v3": ((1, 4), (2, 6), (3, 7), (7, None)),
    "v4": ((1, 3), (3, 5), (4, None)),
    "v5": ((1, 7), (7, None)),
    "v6": ((1, 5), (6, None)),
    "v7": ((1, 5), (6, None)),
    "v8": ((1, 5), (4, None)),
    "v9": ((1, 4), (2, None)),
}

#: Table II — minimal core windows (edge core window skyline) for k = 2.
#: Keyed by the ``(u, v, t)`` triple; values are ordered window tuples.
PAPER_ECS_K2: dict[tuple[str, str, int], tuple[tuple[int, int], ...]] = {
    ("v2", "v9", 1): ((1, 4),),
    ("v1", "v4", 2): ((2, 3),),
    ("v2", "v3", 2): ((1, 4), (2, 6)),
    ("v1", "v2", 3): ((2, 3), (3, 5)),
    ("v2", "v4", 3): ((2, 3), (3, 5)),
    ("v3", "v9", 4): ((1, 4),),
    ("v4", "v8", 4): ((3, 5),),
    ("v1", "v6", 5): ((5, 5),),
    ("v1", "v7", 5): ((5, 5),),
    ("v2", "v8", 5): ((3, 5),),
    ("v6", "v7", 5): ((5, 5),),
    ("v1", "v3", 6): ((2, 6), (6, 7)),
    ("v3", "v5", 6): ((6, 7),),
    ("v1", "v5", 7): ((6, 7),),
}

#: Figure 2 — the two temporal 2-cores of query range [1, 4]:
#: mapping TTI -> frozenset of edge triples.
PAPER_CORES_RANGE_1_4_K2: dict[tuple[int, int], frozenset[tuple[str, str, int]]] = {
    (2, 3): frozenset({("v1", "v4", 2), ("v1", "v2", 3), ("v2", "v4", 3)}),
    (1, 4): frozenset(
        {
            ("v2", "v9", 1),
            ("v1", "v4", 2),
            ("v2", "v3", 2),
            ("v1", "v2", 3),
            ("v2", "v4", 3),
            ("v3", "v9", 4),
        }
    ),
}


def paper_example_graph() -> TemporalGraph:
    """Build the Figure 1 temporal graph (timestamps already dense)."""
    return TemporalGraph(PAPER_EXAMPLE_EDGES)
