"""The fourteen evaluation datasets of Table III, as synthetic stand-ins.

The paper evaluates on SNAP / KONECT graphs that cannot be downloaded in
this offline environment.  Each dataset is therefore replaced by a
synthetic recipe (:class:`~repro.graph.generators.BurstyConfig`) scaled
down ~150-500x in edge count while preserving the *shape* parameters that
drive the algorithms' relative behaviour:

* the ordering of dataset sizes (FB smallest ... YT largest);
* the timestamp-distinctness ratio ``tmax / |E|`` — the property that
  separates WK / PL / YT (very few distinct timestamps, dense per-slice
  cores, memory-heavy results) from the rest (nearly-unique timestamps,
  huge window counts, where OTCD's ``O(tmax^2)`` scan explodes);
* heavy-tailed degrees plus planted community bursts, so non-trivial
  ``kmax`` and genuinely temporal k-cores exist.

Table :data:`PAPER_STATS` transcribes the original Table III numbers so
the benchmark report can print paper-vs-generated statistics side by
side.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DatasetError
from repro.graph.generators import BurstyConfig, generate_bursty
from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class PaperStats:
    """One row of the paper's Table III."""

    name: str
    num_vertices: int
    num_edges: int
    tmax: int
    kmax: int


#: Original Table III, for side-by-side reporting.
PAPER_STATS: dict[str, PaperStats] = {
    "FB": PaperStats("FB-Forum", 899, 33_786, 33_482, 19),
    "BO": PaperStats("BitcoinOtc", 5_881, 35_592, 35_444, 21),
    "CM": PaperStats("CollegeMsg", 1_899, 59_835, 58_911, 20),
    "EM": PaperStats("Email", 986, 332_334, 207_880, 34),
    "MC": PaperStats("Mooc", 7_143, 411_749, 345_600, 76),
    "MO": PaperStats("MathOverflow", 24_818, 506_550, 505_784, 78),
    "AU": PaperStats("AskUbuntu", 159_316, 964_437, 960_866, 48),
    "LR": PaperStats("Lkml-reply", 63_399, 1_096_440, 881_701, 91),
    "EN": PaperStats("Enron", 87_273, 1_148_072, 220_364, 53),
    "SU": PaperStats("SuperUser", 194_085, 1_443_339, 1_437_199, 61),
    "WT": PaperStats("WikiTalk", 1_219_241, 2_284_546, 1_956_001, 68),
    "WK": PaperStats("Wikipedia", 91_340, 2_435_731, 4_518, 117),
    "PL": PaperStats("ProsperLoans", 89_269, 3_394_979, 1_259, 111),
    "YT": PaperStats("Youtube", 3_223_589, 9_375_374, 203, 88),
}

#: Figure labels that differ from Table III abbreviations.
ALIASES = {"MF": "MO", "ER": "EN"}

#: Scaled synthetic recipes.  Edge counts grow FB -> YT like the paper;
#: ``tmax`` tracks the original distinctness ratio (WK/PL/YT have few
#: distinct timestamps despite many edges).
RECIPES: dict[str, BurstyConfig] = {
    "FB": BurstyConfig(
        num_vertices=90, background_edges=700, tmax=1_100, exponent=2.3,
        num_bursts=10, burst_size=10, burst_width=24, edges_per_burst=50,
        seed=101, name="FB",
    ),
    "BO": BurstyConfig(
        num_vertices=380, background_edges=800, tmax=1_250, exponent=2.2,
        num_bursts=10, burst_size=12, burst_width=28, edges_per_burst=90,
        seed=102, name="BO",
    ),
    "CM": BurstyConfig(
        num_vertices=150, background_edges=1_200, tmax=1_900, exponent=2.3,
        num_bursts=14, burst_size=11, burst_width=30, edges_per_burst=60,
        seed=103, name="CM",
    ),
    "EM": BurstyConfig(
        num_vertices=80, background_edges=4_200, tmax=3_800, exponent=2.1,
        repeat_rate=0.5, num_bursts=24, burst_size=13, burst_width=45,
        edges_per_burst=140, seed=104, name="EM",
    ),
    "MC": BurstyConfig(
        num_vertices=340, background_edges=4_800, tmax=5_500, exponent=2.2,
        repeat_rate=0.2, num_bursts=28, burst_size=14, burst_width=50,
        edges_per_burst=80, seed=105, name="MC",
    ),
    "MO": BurstyConfig(
        num_vertices=800, background_edges=5_600, tmax=7_600, exponent=2.1,
        num_bursts=30, burst_size=14, burst_width=60, edges_per_burst=80,
        seed=106, name="MO",
    ),
    "AU": BurstyConfig(
        num_vertices=2_600, background_edges=7_400, tmax=9_600, exponent=2.2,
        num_bursts=32, burst_size=13, burst_width=70, edges_per_burst=80,
        seed=107, name="AU",
    ),
    "LR": BurstyConfig(
        num_vertices=1_400, background_edges=8_000, tmax=8_800, exponent=2.1,
        repeat_rate=0.2, num_bursts=36, burst_size=15, burst_width=65,
        edges_per_burst=85, seed=108, name="LR",
    ),
    "EN": BurstyConfig(
        num_vertices=1_800, background_edges=8_400, tmax=2_200, exponent=2.2,
        repeat_rate=0.3, num_bursts=36, burst_size=15, burst_width=24,
        edges_per_burst=90, seed=109, name="EN",
    ),
    "SU": BurstyConfig(
        num_vertices=3_200, background_edges=9_800, tmax=12_400, exponent=2.2,
        num_bursts=38, burst_size=14, burst_width=90, edges_per_burst=85,
        seed=110, name="SU",
    ),
    "WT": BurstyConfig(
        num_vertices=6_400, background_edges=12_200, tmax=13_600, exponent=2.1,
        num_bursts=44, burst_size=15, burst_width=95, edges_per_burst=90,
        seed=111, name="WT",
    ),
    "WK": BurstyConfig(
        num_vertices=1_700, background_edges=12_800, tmax=200, exponent=2.1,
        repeat_rate=0.2, num_bursts=46, burst_size=18, burst_width=8,
        edges_per_burst=100, seed=112, name="WK",
    ),
    "PL": BurstyConfig(
        num_vertices=1_400, background_edges=15_000, tmax=60, exponent=2.1,
        num_bursts=50, burst_size=19, burst_width=4, edges_per_burst=110,
        seed=113, name="PL",
    ),
    "YT": BurstyConfig(
        num_vertices=10_000, background_edges=18_000, tmax=40, exponent=2.0,
        num_bursts=56, burst_size=20, burst_width=2, edges_per_burst=120,
        seed=114, name="YT",
    ),
}

#: Fig. 4's seven representative datasets.
FIG4_DATASETS = ("CM", "EM", "MC", "LR", "EN", "SU", "WT")
#: Fig. 7/8/10/11's four varied datasets (small/small/large-many-ts/few-ts).
VARIED_DATASETS = ("CM", "EM", "WT", "PL")
#: Fig. 6/9/12 run everything, in the paper's presentation order.
ALL_DATASETS = tuple(RECIPES)


def canonical_name(name: str) -> str:
    """Resolve figure aliases (MF -> MO, ER -> EN) and validate."""
    resolved = ALIASES.get(name.upper(), name.upper())
    if resolved not in RECIPES:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(RECIPES)}"
        )
    return resolved


def recipe(name: str) -> BurstyConfig:
    """The generation recipe of a dataset."""
    return RECIPES[canonical_name(name)]


@lru_cache(maxsize=None)
def load_dataset(name: str) -> TemporalGraph:
    """Generate (and cache in-process) a dataset by abbreviation."""
    return generate_bursty(recipe(name))


def paper_stats(name: str) -> PaperStats:
    """The original Table III row of a dataset."""
    return PAPER_STATS[canonical_name(name)]
