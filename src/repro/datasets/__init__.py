"""Dataset recipes, the paper's worked example, and statistics."""

from repro.datasets.paper_example import (
    PAPER_CORES_RANGE_1_4_K2,
    PAPER_ECS_K2,
    PAPER_EXAMPLE_EDGES,
    PAPER_VCT_K2,
    paper_example_graph,
)
from repro.datasets.registry import (
    ALL_DATASETS,
    FIG4_DATASETS,
    PAPER_STATS,
    RECIPES,
    VARIED_DATASETS,
    canonical_name,
    load_dataset,
    paper_stats,
    recipe,
)
from repro.datasets.stats import (
    DatasetStats,
    compute_stats,
    default_k,
    default_range_width,
)

__all__ = [
    "ALL_DATASETS",
    "DatasetStats",
    "FIG4_DATASETS",
    "PAPER_CORES_RANGE_1_4_K2",
    "PAPER_ECS_K2",
    "PAPER_EXAMPLE_EDGES",
    "PAPER_STATS",
    "PAPER_VCT_K2",
    "RECIPES",
    "VARIED_DATASETS",
    "canonical_name",
    "compute_stats",
    "default_k",
    "default_range_width",
    "load_dataset",
    "paper_example_graph",
    "paper_stats",
    "recipe",
]
