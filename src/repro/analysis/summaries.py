"""Result-set summaries: the statistics an analyst reads off a run.

Temporal k-core enumeration can return hundreds of thousands of cores
(Figure 9); the first thing any application does is summarise.  This
module computes the distributions the paper's motivation sections reason
about: how large cores are, how wide their windows are, and which
vertices keep appearing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class ResultSummary:
    """Aggregate statistics over one enumeration result."""

    num_results: int
    total_edges: int
    min_edges: int
    max_edges: int
    mean_edges: float
    min_window: int
    max_window: int
    mean_window: float

    @classmethod
    def empty(cls) -> "ResultSummary":
        return cls(0, 0, 0, 0, 0.0, 0, 0, 0.0)


def summarize(result: EnumerationResult) -> ResultSummary:
    """Summary of core sizes and TTI widths (requires collect mode)."""
    if result.cores is None:
        raise InvalidParameterError(
            "summaries need collected results; rerun with collect=True"
        )
    if not result.cores:
        return ResultSummary.empty()
    sizes = [core.num_edges for core in result.cores]
    widths = [core.tti[1] - core.tti[0] + 1 for core in result.cores]
    n = len(sizes)
    return ResultSummary(
        num_results=n,
        total_edges=sum(sizes),
        min_edges=min(sizes),
        max_edges=max(sizes),
        mean_edges=sum(sizes) / n,
        min_window=min(widths),
        max_window=max(widths),
        mean_window=sum(widths) / n,
    )


def window_width_histogram(result: EnumerationResult) -> dict[int, int]:
    """TTI width -> number of cores (sorted by width)."""
    if result.cores is None:
        raise InvalidParameterError("requires collected results")
    counter = Counter(core.tti[1] - core.tti[0] + 1 for core in result.cores)
    return dict(sorted(counter.items()))


def vertex_participation(
    graph: TemporalGraph, result: EnumerationResult, top: int | None = None
) -> list[tuple[object, int]]:
    """Vertices ranked by how many distinct cores they appear in.

    Returns ``(label, count)`` pairs, most frequent first; ``top`` limits
    the list.  Persistent participants are the recurring-actor signal
    (bot rings, super-spreaders) the paper's applications look for.
    """
    if result.cores is None:
        raise InvalidParameterError("requires collected results")
    counter: Counter[int] = Counter()
    for core in result.cores:
        counter.update(core.vertices(graph))
    ranked = [
        (graph.label_of(u), count) for u, count in counter.most_common(top)
    ]
    return ranked
