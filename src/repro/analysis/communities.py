"""Community-level views over enumeration results.

The paper's applications (AML rings, misinformation bursts, transmission
clusters) all follow the same post-processing pattern over the raw core
stream:

1. group cores by vertex set ("the same actors");
2. pick each group's *tightest* occurrence (the shortest TTI — the
   burst itself rather than the window that happens to contain it);
3. relate groups (containment, overlap) to separate noise from signal.

These helpers implement that pattern once, so applications — including
this repository's examples — do not re-derive it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class CommunityBurst:
    """A distinct actor set with its tightest active window."""

    vertices: frozenset[Hashable]
    tightest_tti: tuple[int, int]
    num_occurrences: int
    max_edges: int

    @property
    def width(self) -> int:
        return self.tightest_tti[1] - self.tightest_tti[0] + 1


def community_bursts(
    graph: TemporalGraph, result: EnumerationResult
) -> list[CommunityBurst]:
    """Group cores by vertex set; report each group's tightest window.

    Sorted by ascending window width (tightest bursts first), then by
    start time — the triage order an investigator wants.
    """
    if result.cores is None:
        raise InvalidParameterError("requires collected results")
    grouped: dict[frozenset[Hashable], list] = {}
    for core in result.cores:
        key = frozenset(core.vertex_labels(graph))
        grouped.setdefault(key, []).append(core)
    bursts = []
    for vertices, cores in grouped.items():
        tightest = min(cores, key=lambda c: (c.tti[1] - c.tti[0], c.tti[0]))
        bursts.append(
            CommunityBurst(
                vertices=vertices,
                tightest_tti=tightest.tti,
                num_occurrences=len(cores),
                max_edges=max(c.num_edges for c in cores),
            )
        )
    bursts.sort(key=lambda b: (b.width, b.tightest_tti[0]))
    return bursts


def filter_bursts(
    bursts: list[CommunityBurst],
    *,
    min_vertices: int = 0,
    max_width: int | None = None,
) -> list[CommunityBurst]:
    """Keep bursts with at least ``min_vertices`` actors and a tightest
    window no wider than ``max_width`` timestamps."""
    kept = []
    for burst in bursts:
        if len(burst.vertices) < min_vertices:
            continue
        if max_width is not None and burst.width > max_width:
            continue
        kept.append(burst)
    return kept


def match_planted_groups(
    bursts: list[CommunityBurst],
    planted: list[set[Hashable]],
) -> dict[int, CommunityBurst | None]:
    """Match detected bursts to planted ground-truth groups.

    A burst matches a planted group when one contains the other (cores
    may pick up a hanger-on vertex, or miss a peripheral member).
    Returns ``{planted_index: best_matching_burst_or_None}`` where best
    means the largest vertex overlap.
    """
    matches: dict[int, CommunityBurst | None] = {}
    for index, group in enumerate(planted):
        best: CommunityBurst | None = None
        best_overlap = 0
        for burst in bursts:
            members = set(burst.vertices)
            if not (members <= group or group <= members):
                continue
            overlap = len(members & group)
            if overlap > best_overlap:
                best_overlap = overlap
                best = burst
        matches[index] = best
    return matches
