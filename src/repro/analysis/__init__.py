"""Post-processing analyses over enumeration results."""

from repro.analysis.communities import (
    CommunityBurst,
    community_bursts,
    filter_bursts,
    match_planted_groups,
)
from repro.analysis.summaries import (
    ResultSummary,
    summarize,
    vertex_participation,
    window_width_histogram,
)

__all__ = [
    "CommunityBurst",
    "ResultSummary",
    "community_bursts",
    "filter_bursts",
    "match_planted_groups",
    "summarize",
    "vertex_participation",
    "window_width_histogram",
]
