"""Wire protocol of the serving daemon — newline-delimited JSON frames.

One connection carries a sequence of **frames**, each a single JSON
object on its own ``\\n``-terminated line (UTF-8; request lines are
capped at :data:`MAX_LINE_BYTES`, response frames are unbounded — a
streamed core's ``edge_ids`` list can exceed the cap, so clients
reassemble lines to their newline).  Requests flow client → daemon,
responses daemon → client; every request carries a client-chosen ``id``
that tags every response frame it produces, so a client may pipeline
requests and demultiplex answers by ``id``.

Request frames (``op`` selects the verb)::

    {"op": "ping", "id": 1}
    {"op": "stats", "id": 2}
    {"op": "query", "id": 3, "k": 2, "ts": 1, "te": 9}
    {"op": "batch", "id": 4, "k": 2, "ranges": [[1, 5], [2, 8]]}
    {"op": "append", "id": 5, "edges": [["a", "b", 7]], "dedupe": "tok"}
    {"op": "flush", "id": 6}
    {"op": "shutdown", "id": 7}

``query`` and ``batch`` accept optional ``graph`` (a store key —
defaults to the store's sole graph), ``timeout`` (a per-request
deadline in seconds) and, for ``query``, ``edge_ids`` (default true —
whether streamed cores carry their edge-id list).

Response frames:

* ``query`` streams one core frame per result **as it is enumerated**
  — ``{"id": 3, "core": {"tti": [2, 5], "num_edges": 3, "edge_ids":
  [...]}}`` — where the ``core`` value is byte-for-byte the line an
  in-process :class:`~repro.serve.sinks.NDJSONSink` would have written
  for the same query; then one terminal frame ``{"id": 3, "ok": true,
  "done": true, "num_results": N, "total_edges": M, "completed":
  true}``.  ``completed: false`` marks a deadline abort (the stream
  holds whatever was delivered before it).
* ``batch`` answers with a single terminal frame whose ``answers``
  list carries ``{"range", "num_results", "total_edges", "completed"}``
  per input range, in input order.
* ``append`` ingests edge events durably: ``edges`` is a non-empty
  list of ``[u, v, raw_t]`` triples (labels string or int, timestamps
  non-decreasing), ``dedupe`` an optional client token making the
  request idempotent.  The single answer frame — ``{"id": 5, "ok":
  true, "done": true, "lsn": L, "appended": N}`` — is sent only after
  the write-ahead log record is **fsynced**; a retried token answers
  with the byte-identical frame.  ``flush`` folds the logged events
  into a fresh snapshot (graph + indexes rebuilt and persisted, log
  trimmed) → ``{"id": 6, "ok": true, "done": true, "lsn": L,
  "applied": N}``.
* ``ping`` → ``{"id": 1, "ok": true, "pong": true}``;
  ``stats`` → ``{"id": 2, "ok": true, "stats": {...}}``;
  ``shutdown`` → ``{"id": 7, "ok": true, "draining": true}``.
* Any failure → ``{"id": ..., "ok": false, "error": {"code": ...,
  "message": ...}}``.  ``id`` is ``null`` when the request line never
  parsed far enough to have one.  Codes are the :data:`ERROR_CODES`
  set; ``overloaded`` (admission control) and ``draining`` (shutdown
  in progress) are the backpressure signals a client should back off
  on, the rest are terminal for that request.

The same port answers ``GET /metrics`` over HTTP (the daemon sniffs
the first line of each connection), so one address serves both the
query protocol and Prometheus scrapes — see ``docs/DAEMON.md``.

This module is deliberately transport-free: it parses and builds
frames (:func:`decode_frame`, :func:`parse_request`,
:func:`encode_frame`, the ``*_frame`` builders) and is shared by the
daemon, its clients and the protocol property tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Hard byte ceiling for *request* lines.  A request line longer than
#: this is rejected with ``too-large`` and the connection closed (the
#: line boundary is unrecoverable once the limit is overrun).
#: Response frames are not bounded by it.
MAX_LINE_BYTES = 1 << 20

#: The request verbs.
OPS = ("ping", "stats", "query", "batch", "append", "flush", "shutdown")

#: Every ``error.code`` a response frame may carry.
ERROR_CODES = (
    "bad-json",      # request line is not valid JSON
    "bad-request",   # parsed, but malformed (missing/ill-typed fields)
    "unknown-op",    # valid frame, unrecognised op
    "too-large",     # request line exceeded MAX_LINE_BYTES
    "overloaded",    # admission control: request queue full, back off
    "draining",      # daemon is shutting down, not accepting work
    "invalid",       # query parameters rejected (bad k/range/graph key)
    "read-only",     # durable ingestion disabled after a WAL disk error
    "internal",      # execution failed; message carries the error
)

#: Ceiling on edges per ``append`` frame — keeps one WAL record (and
#: the request line) bounded; clients chunk larger loads.
MAX_APPEND_EDGES = 10_000


class ProtocolError(ReproError):
    """A frame violated the protocol; ``code`` is from :data:`ERROR_CODES`."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """A parsed, validated request frame."""

    op: str
    id: object  # any JSON scalar the client chose; echoed verbatim
    k: int | None = None
    ranges: tuple[tuple[int, int], ...] = ()
    graph: str | None = None
    timeout: float | None = None
    edge_ids: bool = field(default=True)
    edges: tuple[tuple[object, object, int], ...] = ()
    dedupe: str | None = None

    @property
    def is_work(self) -> bool:
        """Whether this op goes through the request queue (vs inline).

        ``append`` and ``flush`` ride the same single execution lane as
        queries — which is also what serialises all mutation of one
        store key without a dedicated ingestion lock.
        """
        return self.op in ("query", "batch", "append", "flush")


def encode_frame(frame: dict) -> bytes:
    """One frame as its wire line (UTF-8, ``\\n``-terminated)."""
    return (json.dumps(frame) + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` (``too-large`` / ``bad-json`` /
    ``bad-request``) instead of letting ``json`` errors escape.
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "too-large",
            f"frame is {len(line)} bytes (limit {MAX_LINE_BYTES})",
        )
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-json", f"not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            "bad-request", f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def _require_int(frame: dict, name: str) -> int:
    value = frame.get(name)
    # bool is an int subclass; reject it explicitly.
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(
            "bad-request", f"{frame.get('op')!r} needs an integer {name!r}"
        )
    return value


def parse_request(frame: dict) -> Request:
    """Validate a decoded frame into a :class:`Request`.

    Raises :class:`ProtocolError` with ``unknown-op`` / ``bad-request``
    on anything malformed.  Range *semantics* (``k >= 1``, window
    inside the graph) are not checked here — the daemon validates those
    against the store and answers ``invalid``.
    """
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "frame needs a string 'op'")
    if op not in OPS:
        raise ProtocolError("unknown-op", f"unknown op {op!r} (know {OPS})")
    rid = frame.get("id")
    if rid is not None and not isinstance(rid, (str, int, float)):
        raise ProtocolError("bad-request", "'id' must be a JSON scalar")
    if op not in ("query", "batch", "append", "flush"):
        return Request(op=op, id=rid)

    graph = frame.get("graph")
    if graph is not None and not isinstance(graph, str):
        raise ProtocolError("bad-request", "'graph' must be a string store key")
    timeout = frame.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ProtocolError("bad-request", "'timeout' must be a number")
        timeout = float(timeout)
        if timeout <= 0:
            raise ProtocolError("bad-request", "'timeout' must be > 0")

    if op == "flush":
        return Request(op=op, id=rid, graph=graph, timeout=timeout)
    if op == "append":
        raw_edges = frame.get("edges")
        if not isinstance(raw_edges, list) or not raw_edges:
            raise ProtocolError(
                "bad-request", "'append' needs a non-empty 'edges' list"
            )
        if len(raw_edges) > MAX_APPEND_EDGES:
            raise ProtocolError(
                "too-large",
                f"'append' carries {len(raw_edges)} edges "
                f"(limit {MAX_APPEND_EDGES}); chunk the load",
            )
        edges = []
        for triple in raw_edges:
            if (
                not isinstance(triple, (list, tuple))
                or len(triple) != 3
                or not all(
                    isinstance(label, (str, int)) and not isinstance(label, bool)
                    for label in triple[:2]
                )
                or not isinstance(triple[2], int)
                or isinstance(triple[2], bool)
            ):
                raise ProtocolError(
                    "bad-request",
                    "'edges' entries must be [u, v, raw_t] with string or "
                    "integer labels and an integer timestamp",
                )
            edges.append((triple[0], triple[1], triple[2]))
        dedupe = frame.get("dedupe")
        if dedupe is not None and not isinstance(dedupe, str):
            raise ProtocolError("bad-request", "'dedupe' must be a string token")
        return Request(
            op=op,
            id=rid,
            graph=graph,
            timeout=timeout,
            edges=tuple(edges),
            dedupe=dedupe,
        )

    k = _require_int(frame, "k")
    edge_ids = frame.get("edge_ids", True)
    if not isinstance(edge_ids, bool):
        raise ProtocolError("bad-request", "'edge_ids' must be a boolean")

    if op == "query":
        ranges = ((_require_int(frame, "ts"), _require_int(frame, "te")),)
    else:
        raw = frame.get("ranges")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                "bad-request", "'batch' needs a non-empty 'ranges' list"
            )
        ranges = []
        for pair in raw:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or any(
                    not isinstance(b, int) or isinstance(b, bool) for b in pair
                )
            ):
                raise ProtocolError(
                    "bad-request",
                    "'ranges' entries must be [ts, te] integer pairs",
                )
            ranges.append((pair[0], pair[1]))
        ranges = tuple(ranges)
    return Request(
        op=op,
        id=rid,
        k=k,
        ranges=ranges,
        graph=graph,
        timeout=timeout,
        edge_ids=edge_ids,
    )


# ----------------------------------------------------------------------
# Response builders
# ----------------------------------------------------------------------


def ok_frame(rid, **fields) -> dict:
    """A successful response frame for request ``rid``."""
    return {"id": rid, "ok": True, **fields}


def error_frame(rid, code: str, message: str) -> dict:
    """An error response frame; ``code`` must be in :data:`ERROR_CODES`."""
    assert code in ERROR_CODES, code
    return {"id": rid, "ok": False, "error": {"code": code, "message": message}}


def done_frame(rid, *, num_results: int, total_edges: int, completed: bool) -> dict:
    """The terminal frame of a streamed ``query``."""
    return ok_frame(
        rid,
        done=True,
        num_results=num_results,
        total_edges=total_edges,
        completed=completed,
    )


def batch_done_frame(rid, answers: list[dict]) -> dict:
    """The terminal frame of a ``batch`` (one answer dict per range)."""
    return ok_frame(rid, done=True, answers=answers)


def append_done_frame(rid, *, lsn: int, appended: int) -> dict:
    """The acknowledgement of an ``append`` — only built post-fsync.

    ``lsn`` is the WAL sequence number of the *first* edge in the
    request, ``appended`` how many edges the request carried.  A
    deduplicated retry rebuilds exactly this frame from the log's token
    map, so the answer is byte-stable across daemon restarts.
    """
    return ok_frame(rid, done=True, lsn=lsn, appended=appended)


def flush_done_frame(rid, *, lsn: int, applied: int) -> dict:
    """The terminal frame of a ``flush`` (snapshot advanced to ``lsn``)."""
    return ok_frame(rid, done=True, lsn=lsn, applied=applied)


def core_frame_prefix(rid) -> str:
    """The text that precedes a streamed core's NDJSON payload.

    A core frame is assembled by splicing the *exact* line an
    :class:`~repro.serve.sinks.NDJSONSink` produced between this prefix
    and a closing ``}`` — never by re-encoding — which is what makes
    daemon-streamed cores byte-identical to in-process NDJSON output.
    """
    return f'{{"id": {json.dumps(rid)}, "core": '
