"""repro.serve — the plan/execute serving layer.

Serving splits into three stages (see ``docs/SERVING.md``):

* **plan** (:mod:`repro.serve.planner`) — normalise any mix of range
  queries into a :class:`QueryPlan`: group by ``(graph, k)``, dedupe
  identical ranges, merge overlapping windows so shared work is
  enumerated once, pick the engine per group;
* **execute** (:mod:`repro.serve.executor`) — cut each group's columnar
  window slice (shared index or direct compute) and run the columnar
  Algorithm-5 walk (:mod:`repro.serve.columnar`) once per covering
  window, slicing emissions per request;
* **sink** (:mod:`repro.serve.sinks`) — deliver results: materialised
  core objects, streaming callbacks, counters, NDJSON lines or flat
  arrays.

A fourth, optional axis fans execution out across processes
(:mod:`repro.serve.parallel`): a :class:`WorkerPool` of store-attached
workers (mmap, zero copy) executes the plan's covering windows in
parallel — ``execute_plan(parallel=pool)`` — and the parent stitches
the columnar results back into input order through the same sinks.

The network front door (:mod:`repro.serve.daemon`,
:mod:`repro.serve.protocol`, :mod:`repro.serve.client`) puts the whole
pipeline behind one socket: a long-lived asyncio daemon with admission
control, streamed NDJSON-identical answers, graceful drain and an HTTP
``/metrics`` endpoint — see ``docs/DAEMON.md``.
"""

from repro.serve.client import DaemonClient
from repro.serve.columnar import run_columnar_walk
from repro.serve.daemon import ServingDaemon
from repro.serve.executor import execute_plan
from repro.serve.parallel import WorkerPool, open_pool
from repro.serve.planner import (
    CoveringWindow,
    PlanGroup,
    QueryPlan,
    QueryRequest,
    plan_queries,
)
from repro.serve.sinks import (
    CallbackSink,
    CountSink,
    FlatArraySink,
    MaterializingSink,
    NDJSONSink,
    ResultSink,
    TeeSink,
    make_sink,
)

__all__ = [
    "CallbackSink",
    "CountSink",
    "CoveringWindow",
    "DaemonClient",
    "ServingDaemon",
    "FlatArraySink",
    "MaterializingSink",
    "NDJSONSink",
    "PlanGroup",
    "QueryPlan",
    "QueryRequest",
    "ResultSink",
    "TeeSink",
    "WorkerPool",
    "execute_plan",
    "make_sink",
    "open_pool",
    "plan_queries",
    "run_columnar_walk",
]
