"""repro.serve — the plan/execute serving layer.

Serving splits into three stages (see ``docs/SERVING.md``):

* **plan** (:mod:`repro.serve.planner`) — normalise any mix of range
  queries into a :class:`QueryPlan`: group by ``(graph, k)``, dedupe
  identical ranges, merge overlapping windows so shared work is
  enumerated once, pick the engine per group;
* **execute** (:mod:`repro.serve.executor`) — cut each group's columnar
  window slice (shared index or direct compute) and run the columnar
  Algorithm-5 walk (:mod:`repro.serve.columnar`) once per covering
  window, slicing emissions per request;
* **sink** (:mod:`repro.serve.sinks`) — deliver results: materialised
  core objects, streaming callbacks, counters, NDJSON lines or flat
  arrays.
"""

from repro.serve.columnar import run_columnar_walk
from repro.serve.executor import execute_plan
from repro.serve.planner import (
    CoveringWindow,
    PlanGroup,
    QueryPlan,
    QueryRequest,
    plan_queries,
)
from repro.serve.sinks import (
    CallbackSink,
    CountSink,
    FlatArraySink,
    MaterializingSink,
    NDJSONSink,
    ResultSink,
    TeeSink,
    make_sink,
)

__all__ = [
    "CallbackSink",
    "CountSink",
    "CoveringWindow",
    "FlatArraySink",
    "MaterializingSink",
    "NDJSONSink",
    "PlanGroup",
    "QueryPlan",
    "QueryRequest",
    "ResultSink",
    "TeeSink",
    "execute_plan",
    "make_sink",
    "plan_queries",
    "run_columnar_walk",
]
