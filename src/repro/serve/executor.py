"""The plan executor — run a :class:`~repro.serve.planner.QueryPlan`.

Execution walks the plan group by group:

* an ``index`` group resolves its shared
  :class:`~repro.core.index.CoreIndex` (pinned on the group, else
  registry → store → build) and cuts the columnar window slice of
  *all* its covering windows with one vectorised ``searchsorted``
  sweep over the skyline's cached start-sorted permutation;
* a ``direct`` group runs Algorithm 2 over each covering window and
  takes the slice from the freshly computed skyline;
* every covering window is enumerated **once** by the columnar core
  (:func:`~repro.serve.columnar.run_columnar_walk`); when several
  requests share the window, a slice router fans each emission batch
  out to the requests whose range contains the reported TTIs — the
  target ranges are held as flat interval arrays, so each batch is
  routed with one vectorised ``searchsorted`` over all active targets
  (and a counting-only batch never re-enters Python at all).

Results come back as one :class:`~repro.core.results.EnumerationResult`
per request, in request order; requests that carry their own sink are
delivered through it (and the returned result reflects that sink's
counters).  ``execute_plan(parallel=...)`` hands the whole plan to a
:class:`~repro.serve.parallel.WorkerPool` instead, which partitions the
covering windows across store-attached worker processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.obs.metrics import get_registry, timing_enabled
from repro.obs.timing import Deadline, now
from repro.serve.columnar import run_columnar_walk
from repro.serve.planner import PlanGroup, QueryPlan
from repro.serve.sinks import MaterializingSink, CountSink, ResultSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.index import CoreIndexRegistry
    from repro.serve.parallel import WorkerPool
    from repro.store.index_store import IndexStore

_NO_ACTIVE = np.empty(0, dtype=np.int64)

# Executor instruments on the process metrics registry.  Latency
# histograms observe only when timing is enabled; the router counters
# accumulate locally per walk and flush once at finish, so the
# per-emission hot path stays registry-free.
_EXECUTE_SECONDS = get_registry().histogram(
    "repro_execute_seconds", "Plan execution latency per batch"
)
_ENUMERATE_SECONDS = get_registry().histogram(
    "repro_enumerate_seconds", "Columnar walk latency per covering window"
)
_SINK_FLUSH_SECONDS = get_registry().histogram(
    "repro_sink_flush_seconds", "Sink finish/flush latency per covering window"
)
_WINDOWS_EXECUTED = get_registry().counter(
    "repro_execute_windows_total",
    "Covering windows enumerated, by sharing mode",
    ("mode",),
)
_ROUTER_TARGETS = get_registry().counter(
    "repro_router_targets_total", "Requests fanned out by slice routers"
)
_ROUTER_BATCHES = get_registry().counter(
    "repro_router_batches_total", "Emission batches routed by slice routers"
)


class _SliceRouter(ResultSink):
    """Fan one covering walk out to the requests it serves.

    Targets are ``(ts, te, sink)``, held as one shared pair of flat
    interval arrays sorted by ``ts``.  An emission batch at start time
    ``t`` reaches every target with ``ts <= t <= te`` — activation is a
    single ``searchsorted`` into the start array (starts only grow), and
    the prefix of cores each active target reports (those whose TTI end
    fits inside its range) is found for *all* active targets with one
    vectorised ``searchsorted`` of their end bounds into the batch's
    sorted ``ends``.  That prefix is exactly the target range's own
    answer: a covering window's cores restricted to a contained range
    are the range's cores (TTI containment, see the planner notes).

    When every target delivers to a bare :class:`CountSink` (the batch
    default), routing never re-enters Python per target: the per-target
    result and edge counters are accumulated as flat arrays (one
    ``cumsum`` of the batch's prefix lengths gives every cut's edge
    total) and written into the sinks once, at :meth:`finish`.  This is
    what keeps 1000+-request contended batches vectorised end to end.
    """

    def __init__(self, targets: list[tuple[int, int, ResultSink]]):
        super().__init__()
        order = sorted(range(len(targets)), key=lambda i: targets[i][0])
        self._ts = np.array([targets[i][0] for i in order], dtype=np.int64)
        self._te = np.array([targets[i][1] for i in order], dtype=np.int64)
        self._sinks = [targets[i][2] for i in order]
        self._position = 0
        self._active = _NO_ACTIVE  # indices of activated, unretired targets
        self._batches = 0  # flushed to the metrics registry at finish
        self._counting = all(type(sink) is CountSink for sink in self._sinks)
        if self._counting:
            self._num = np.zeros(len(targets), dtype=np.int64)
            self._edges = np.zeros(len(targets), dtype=np.int64)

    def consume(self, t, ends, prefix_lens, eids) -> None:
        self._batches += 1
        hi = int(np.searchsorted(self._ts, t, side="right"))
        if hi > self._position:
            self._active = np.concatenate(
                (self._active, np.arange(self._position, hi, dtype=np.int64))
            )
            self._position = hi
        if not len(self._active):
            return
        # Reported TTI starts only grow; a target whose te fell behind
        # t is done for good.
        keep = self._te[self._active] >= t
        if not keep.all():
            self._active = self._active[keep]
        active = self._active
        if not len(active):
            return
        counts = np.searchsorted(ends, self._te[active], side="right")
        if self._counting:
            totals = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(prefix_lens))
            )
            self._num[active] += counts  # active indices are distinct
            self._edges[active] += totals[counts]
            return
        sinks = self._sinks
        for idx, count in zip(active.tolist(), counts.tolist()):
            if count:
                # Cut the shared run to the largest prefix this target
                # reports — downstream sinks convert what they receive,
                # and a narrow range must not pay for the wide window.
                run = eids[: int(prefix_lens[count - 1])]
                sinks[idx].emit(t, ends[:count], prefix_lens[:count], run)

    def finish(self, completed: bool) -> None:
        super().finish(completed)
        if self._counting:
            for idx, sink in enumerate(self._sinks):
                sink.num_results += int(self._num[idx])
                sink.total_edges += int(self._edges[idx])
        for sink in self._sinks:
            sink.finish(completed)
        _ROUTER_TARGETS.inc(len(self._sinks))
        _ROUTER_BATCHES.inc(self._batches)


def _group_window_arrays(
    group: PlanGroup,
    *,
    registry: "CoreIndexRegistry | None",
    store: "IndexStore | None",
    deadline: Deadline | None = None,
):
    """Yield ``(window, arrays)`` for every covering window of ``group``.

    Window preparation is where the executor's *other* costs live — a
    cold index resolve (possibly a build), the vectorised skyline cut,
    or a full Algorithm-2 run per ``direct`` window.  An expired (or
    cancelled) ``deadline`` therefore short-circuits *before* each
    window's prep: the window is yielded with ``arrays=None`` and the
    caller marks its requests ``completed=False`` without enumerating.
    Without this, a deadline abort would keep paying per-window prep
    for every remaining window — prompt cancellation (the daemon's
    client-disconnect path) needs the skip here, not just inside the
    walk.
    """
    expired = deadline.expired if deadline is not None else (lambda: False)
    if group.engine == "index":
        if expired():
            for window in group.windows:
                yield window, None
            return
        index = group.index
        if index is None:
            from repro.core.index import get_core_index

            index = get_core_index(
                group.graph, group.k, registry=registry, store=store
            )
        span_lo, span_hi = index.ecs.span
        for window in group.windows:
            if window.ts < span_lo or window.te > span_hi:
                raise InvalidParameterError(
                    f"[{window.ts}, {window.te}] is not inside the computed "
                    f"span [{span_lo}, {span_hi}]"
                )
        los, his = index.ecs.start_cuts(
            [window.ts for window in group.windows],
            [window.te for window in group.windows],
        )
        for window, lo, hi in zip(group.windows, los.tolist(), his.tolist()):
            if expired():
                yield window, None
                continue
            selected = index.ecs.selection_from_cut(lo, hi, window.ts, window.te)
            yield window, index.ecs.active_arrays_from_selection(
                selected, window.ts
            )
    elif group.engine == "direct":
        from repro.core.coretime import compute_core_times

        for window in group.windows:
            if expired():
                yield window, None
                continue
            skyline = compute_core_times(
                group.graph, group.k, window.ts, window.te
            ).ecs
            assert skyline is not None
            yield window, skyline.active_window_arrays(window.ts, window.te)
    else:  # pragma: no cover - the planner validates engines
        raise InvalidParameterError(f"plan group has unknown engine {group.engine!r}")


def execute_plan(
    plan: QueryPlan,
    *,
    registry: "CoreIndexRegistry | None" = None,
    store: "IndexStore | None" = None,
    collect: bool = False,
    deadline: Deadline | None = None,
    parallel: "WorkerPool | None" = None,
) -> list[EnumerationResult]:
    """Run ``plan``; one :class:`EnumerationResult` per request, in order.

    ``collect`` picks the default sink (materialising vs counting) for
    requests that did not bring their own.  ``registry``/``store``
    resolve the shared indexes of ``index`` groups (falling back to the
    process-wide default registry).  ``deadline`` is shared by every
    walk: on expiry the remaining windows abort immediately and their
    requests come back with ``completed=False`` and whatever was
    delivered before the abort.

    ``parallel`` hands the plan to a
    :class:`~repro.serve.parallel.WorkerPool`: covering windows are
    partitioned by estimated work and executed across store-attached
    worker processes, with results stitched back into input order
    through the same sink interface.  The pool falls back to this
    sequential path for plans too small to amortise the dispatch.

    Execution records into the plan's trace (an ``execute`` span
    wrapping one ``enumerate`` and ``sink_flush`` span per covering
    window) and into the process metrics registry (the
    ``repro_execute_*`` / ``repro_enumerate_seconds`` /
    ``repro_sink_flush_seconds`` instruments).
    """
    trace = plan.trace
    timed = timing_enabled()
    started = now() if timed else 0.0
    with trace.span(
        "execute", windows=plan.num_windows, pooled=parallel is not None
    ):
        if parallel is not None:
            results = parallel.execute(
                plan, registry=registry, collect=collect, deadline=deadline
            )
        else:
            results = _execute_sequential(
                plan,
                registry=registry,
                store=store,
                collect=collect,
                deadline=deadline,
                timed=timed,
            )
    if timed:
        _EXECUTE_SECONDS.observe(now() - started)
    return results


def _execute_sequential(
    plan: QueryPlan,
    *,
    registry: "CoreIndexRegistry | None",
    store: "IndexStore | None",
    collect: bool,
    deadline: Deadline | None,
    timed: bool,
) -> list[EnumerationResult]:
    trace = plan.trace
    sinks: list[ResultSink] = [
        request.sink
        if request.sink is not None
        else (MaterializingSink() if collect else CountSink())
        for request in plan.requests
    ]
    for group in plan.groups:
        for window, arrays in _group_window_arrays(
            group, registry=registry, store=store, deadline=deadline
        ):
            if window.is_shared:
                target: ResultSink = _SliceRouter(
                    [
                        (
                            plan.requests[rid].ts,
                            plan.requests[rid].te,
                            sinks[rid],
                        )
                        for rid in window.requests
                    ]
                )
            else:
                target = sinks[window.requests[0]]
            if arrays is None:
                # Deadline expired (or the request was cancelled) before
                # this window's prep — skip the walk entirely, the sink
                # just learns it did not complete.
                _WINDOWS_EXECUTED.labels("skipped").inc()
                target.finish(False)
                continue
            _WINDOWS_EXECUTED.labels(
                "shared" if window.is_shared else "single"
            ).inc()
            with trace.span(
                "enumerate",
                ts=window.ts,
                te=window.te,
                requests=len(window.requests),
            ):
                walk_started = now() if timed else 0.0
                completed = run_columnar_walk(
                    window.ts, window.te, arrays, target, deadline=deadline
                )
                if timed:
                    _ENUMERATE_SECONDS.observe(now() - walk_started)
            with trace.span("sink_flush", requests=len(window.requests)):
                flush_started = now() if timed else 0.0
                target.finish(completed)
                if timed:
                    _SINK_FLUSH_SECONDS.observe(now() - flush_started)
    return [
        sink.result("enum", request.k, request.time_range)
        for request, sink in zip(plan.requests, sinks)
    ]
