"""The plan executor — run a :class:`~repro.serve.planner.QueryPlan`.

Execution walks the plan group by group:

* an ``index`` group resolves its shared
  :class:`~repro.core.index.CoreIndex` (pinned on the group, else
  registry → store → build) and cuts the columnar window slice of
  *all* its covering windows with one vectorised ``searchsorted``
  sweep over the skyline's cached start-sorted permutation;
* a ``direct`` group runs Algorithm 2 over each covering window and
  takes the slice from the freshly computed skyline;
* every covering window is enumerated **once** by the columnar core
  (:func:`~repro.serve.columnar.run_columnar_walk`); when several
  requests share the window, a slice router fans each emission batch
  out to the requests whose range contains the reported TTIs — a
  binary search per request per start time, nothing re-enumerated.

Results come back as one :class:`~repro.core.results.EnumerationResult`
per request, in request order; requests that carry their own sink are
delivered through it (and the returned result reflects that sink's
counters).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.serve.columnar import run_columnar_walk
from repro.serve.planner import PlanGroup, QueryPlan
from repro.serve.sinks import MaterializingSink, CountSink, ResultSink
from repro.utils.timer import Deadline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.index import CoreIndexRegistry
    from repro.store.index_store import IndexStore


class _SliceRouter(ResultSink):
    """Fan one covering walk out to the requests it serves.

    Targets are ``(ts, te, sink)``; an emission batch at start time
    ``t`` reaches every target with ``ts <= t`` (targets activate in
    sorted order as ``t`` grows, and retire once ``te < t``), cut down
    by one ``searchsorted`` to the prefix of cores whose TTI end fits
    inside the target range — exactly the cores of that range, since a
    covering window's cores restricted to a contained range are the
    range's own cores (TTI containment, see the planner notes).
    """

    def __init__(self, targets: list[tuple[int, int, ResultSink]]):
        super().__init__()
        self._pending = sorted(targets, key=lambda target: target[0])
        self._position = 0
        self._active: list[tuple[int, int, ResultSink]] = []

    def consume(self, t, ends, prefix_lens, eids) -> None:
        pending = self._pending
        while self._position < len(pending) and pending[self._position][0] <= t:
            self._active.append(pending[self._position])
            self._position += 1
        if not self._active:
            return
        alive: list[tuple[int, int, ResultSink]] = []
        for target in self._active:
            ts, te, sink = target
            if te < t:  # reported TTI starts only grow; this target is done
                continue
            alive.append(target)
            count = int(np.searchsorted(ends, te, side="right"))
            if count:
                # Cut the shared run to the largest prefix this target
                # reports — downstream sinks convert what they receive,
                # and a narrow range must not pay for the wide window.
                run = eids[: int(prefix_lens[count - 1])]
                sink.emit(t, ends[:count], prefix_lens[:count], run)
        self._active = alive

    def finish(self, completed: bool) -> None:
        super().finish(completed)
        for _ts, _te, sink in self._pending:
            sink.finish(completed)


def _group_window_arrays(
    group: PlanGroup,
    *,
    registry: "CoreIndexRegistry | None",
    store: "IndexStore | None",
):
    """Yield ``(window, arrays)`` for every covering window of ``group``."""
    if group.engine == "index":
        index = group.index
        if index is None:
            from repro.core.index import get_core_index

            index = get_core_index(
                group.graph, group.k, registry=registry, store=store
            )
        span_lo, span_hi = index.ecs.span
        for window in group.windows:
            if window.ts < span_lo or window.te > span_hi:
                raise InvalidParameterError(
                    f"[{window.ts}, {window.te}] is not inside the computed "
                    f"span [{span_lo}, {span_hi}]"
                )
        los, his = index.ecs.start_cuts(
            [window.ts for window in group.windows],
            [window.te for window in group.windows],
        )
        for window, lo, hi in zip(group.windows, los.tolist(), his.tolist()):
            selected = index.ecs.selection_from_cut(lo, hi, window.ts, window.te)
            yield window, index.ecs.active_arrays_from_selection(
                selected, window.ts
            )
    elif group.engine == "direct":
        from repro.core.coretime import compute_core_times

        for window in group.windows:
            skyline = compute_core_times(
                group.graph, group.k, window.ts, window.te
            ).ecs
            assert skyline is not None
            yield window, skyline.active_window_arrays(window.ts, window.te)
    else:  # pragma: no cover - the planner validates engines
        raise InvalidParameterError(f"plan group has unknown engine {group.engine!r}")


def execute_plan(
    plan: QueryPlan,
    *,
    registry: "CoreIndexRegistry | None" = None,
    store: "IndexStore | None" = None,
    collect: bool = False,
    deadline: Deadline | None = None,
) -> list[EnumerationResult]:
    """Run ``plan``; one :class:`EnumerationResult` per request, in order.

    ``collect`` picks the default sink (materialising vs counting) for
    requests that did not bring their own.  ``registry``/``store``
    resolve the shared indexes of ``index`` groups (falling back to the
    process-wide default registry).  ``deadline`` is shared by every
    walk: on expiry the remaining windows abort immediately and their
    requests come back with ``completed=False`` and whatever was
    delivered before the abort.
    """
    sinks: list[ResultSink] = [
        request.sink
        if request.sink is not None
        else (MaterializingSink() if collect else CountSink())
        for request in plan.requests
    ]
    for group in plan.groups:
        for window, arrays in _group_window_arrays(
            group, registry=registry, store=store
        ):
            if window.is_shared:
                target: ResultSink = _SliceRouter(
                    [
                        (
                            plan.requests[rid].ts,
                            plan.requests[rid].te,
                            sinks[rid],
                        )
                        for rid in window.requests
                    ]
                )
            else:
                target = sinks[window.requests[0]]
            completed = run_columnar_walk(
                window.ts, window.te, arrays, target, deadline=deadline
            )
            target.finish(completed)
    return [
        sink.result("enum", request.k, request.time_range)
        for request, sink in zip(plan.requests, sinks)
    ]
