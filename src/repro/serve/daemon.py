"""The serving daemon — one socket in front of the whole stack.

:class:`ServingDaemon` is a long-lived asyncio process that attaches an
:class:`~repro.store.index_store.IndexStore`, warms a
:class:`~repro.core.index.CoreIndexRegistry` from it, optionally opens
a store-attached :class:`~repro.serve.parallel.WorkerPool`, and
answers the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` (plus HTTP ``GET /metrics`` on the same
port, sniffed per connection).

Layout — three kinds of task around one execution lane:

* **per-connection reader** — parses request lines.  Control ops
  (``ping``/``stats``/``shutdown``) answer inline from the event loop;
  work ops (``query``/``batch``) go through **admission control**: a
  bounded :class:`asyncio.Queue` whose overflow is answered with an
  ``overloaded`` error frame instead of unbounded buffering.
* **per-connection sender** — the only writer of that socket.  Frames
  travel through a *bounded* outbox, so a slow reader backpressures the
  producer (an enumeration streaming cores blocks on the outbox rather
  than buffering the result set in memory) — but only within the
  request's time budget: past its deadline the walk aborts, and the
  terminal frame waits at most ``terminal_grace`` longer before the
  daemon hangs up, so one stalled reader cannot pin the execution lane.
* **one drain task** feeding a single execution thread — the
  :class:`~repro.serve.parallel.WorkerPool` is single-dispatcher, so
  requests execute one at a time in admission order; parallelism lives
  *inside* a request (covering windows fan out across pool workers).

Cancellation rides the executor's existing deadline machinery: each
request's :class:`~repro.obs.timing.Deadline` carries the connection's
``gone`` event as its ``cancelled`` probe, so a client disconnect
aborts the walk at the next per-start-time poll — and the new
prep-skip in the executor means even the un-walked windows stop
paying index cuts or Algorithm-2 runs.

Graceful drain (SIGTERM, SIGINT, or the ``shutdown`` op): stop
accepting connections, reject new work with ``draining``, finish every
admitted request in FIFO order, then persist the registry's resident
indexes back to the store (:meth:`CoreIndexRegistry.persist_all
<repro.core.index.CoreIndexRegistry.persist_all>`) so the next boot
warms instead of recomputing.  See ``docs/DAEMON.md``.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.index import CoreIndexRegistry
from repro.errors import InvalidParameterError, ReproError, StoreError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    get_registry,
    next_instance,
)
from repro.obs.timing import Deadline, now
from repro.serve.executor import execute_plan
from repro.serve.planner import plan_for_index
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    append_done_frame,
    batch_done_frame,
    core_frame_prefix,
    decode_frame,
    done_frame,
    encode_frame,
    error_frame,
    flush_done_frame,
    ok_frame,
    parse_request,
)
from repro.serve.sinks import NDJSONSink
from repro.store.index_store import IndexStore

#: Environment variable carrying a :class:`WorkerPool` ``_fault_path``
#: into a daemon subprocess — the fault-injection tests' SIGKILL hook.
FAULT_PATH_ENV = "REPRO_POOL_FAULT_PATH"

_STOP = object()  # drain-task sentinel, queued behind all admitted work

#: Store keys an ``append`` may create: plain path-component names only
#: (no separators, no traversal) — the wire must not name arbitrary
#: filesystem locations.
_SAFE_KEY = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class _ReadOnlyError(ReproError):
    """Durable ingestion is disabled; answered with a ``read-only`` frame."""


class _IngestState:
    """Per-key durable-ingestion state held by the daemon.

    Lives entirely on the single execution lane (work ops run one at a
    time), so it needs no lock of its own.  ``last_raw_time`` is the
    ordering watermark — the max of the WAL's last event time and the
    snapshot's raw span — that out-of-order appends are rejected
    against.
    """

    __slots__ = ("key", "wal", "last_raw_time", "pending_since")

    def __init__(self, key: str, wal, last_raw_time: int | None):
        self.key = key
        self.wal = wal
        self.last_raw_time = last_raw_time
        #: Monotonic clock reading of the first append since the last
        #: flush — the key's freshness lag is measured from here.
        self.pending_since: float | None = None

#: Granularity of a bounded outbox put from the execution thread — how
#: long each wait slice lasts before the peer's liveness and the
#: request's deadline are re-checked.
_PUT_WAIT_SECONDS = 0.05


class _FrameWriter:
    """Pseudo text stream turning NDJSON lines into ``core`` frames.

    :class:`~repro.serve.sinks.NDJSONSink` writes one ``\\n``-terminated
    line per core; this splices each line *verbatim* (byte-identical to
    in-process NDJSON output) into a core frame for one request id and
    hands it to the connection outbox.  Called from the execution
    thread; the outbox put blocks when the client reads slowly, which
    is exactly the backpressure the walk should feel — but only up to
    the request's ``deadline``: past it frames are dropped so the walk
    aborts at its next deadline poll instead of letting a stalled
    reader pin the execution lane.
    """

    def __init__(self, conn: "_Connection", rid, deadline: Deadline | None = None):
        self._conn = conn
        self._prefix = core_frame_prefix(rid)
        self._deadline = deadline

    def write(self, line: str) -> None:
        self._conn.send_text_threadsafe(
            self._prefix + line[:-1] + "}\n", self._deadline
        )


class _BridgeSink(NDJSONSink):
    """The async-bridge sink: stream a query's cores over the socket."""

    def __init__(
        self,
        conn: "_Connection",
        rid,
        *,
        edge_ids: bool = True,
        deadline: Deadline | None = None,
    ):
        super().__init__(_FrameWriter(conn, rid, deadline), edge_ids=edge_ids)


class _Connection:
    """One protocol connection: reader state, outbox, liveness flag."""

    def __init__(
        self,
        daemon: "ServingDaemon",
        writer: asyncio.StreamWriter,
        outbox_depth: int,
    ):
        self.daemon = daemon
        self.writer = writer
        self.loop = asyncio.get_running_loop()
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=outbox_depth)
        #: Set once the peer is unreachable (reset, broken pipe) — the
        #: ``cancelled`` probe of every in-flight deadline on this
        #: connection, and the drop switch for further sends.
        self.gone = asyncio.Event()
        self.pending = 0  # admitted jobs not yet finished
        self._idle = asyncio.Event()
        self._idle.set()
        self.sender_task = asyncio.ensure_future(self._sender())

    # -- sending ---------------------------------------------------------

    async def send(self, frame: dict) -> None:
        """Queue a frame from the event loop (control responses)."""
        if not self.gone.is_set():
            await self.outbox.put(encode_frame(frame).decode("utf-8"))

    def send_text_threadsafe(
        self, text: str, deadline: Deadline | None = None
    ) -> bool:
        """Queue raw frame text from the execution thread.

        A full outbox blocks the caller (slow-reader backpressure), but
        in bounded slices: between waits the peer's liveness and the
        request's ``deadline`` are re-checked, so a stalled reader can
        hold the execution lane only until the request's time budget
        runs out.  Returns ``True`` once the frame is queued, ``False``
        when it was dropped (peer gone, deadline expired, or the loop
        already torn down)."""
        while True:
            if self.gone.is_set():
                return False
            if deadline is not None and deadline.expired():
                return False
            try:
                outcome = asyncio.run_coroutine_threadsafe(
                    self._offer(text), self.loop
                ).result()
            except RuntimeError:  # loop already closed (daemon teardown)
                return False
            if outcome is not None:
                return outcome

    def send_frame_threadsafe(
        self, frame: dict, deadline: Deadline | None = None
    ) -> bool:
        return self.send_text_threadsafe(
            encode_frame(frame).decode("utf-8"), deadline
        )

    async def _offer(self, text: str) -> bool | None:
        """One bounded outbox put: ``True`` queued, ``False`` dropped
        (peer gone), ``None`` still full — the caller re-checks its
        deadline and retries."""
        if self.gone.is_set():
            return False
        try:
            self.outbox.put_nowait(text)
            return True
        except asyncio.QueueFull:
            pass
        try:
            await asyncio.wait_for(self.outbox.put(text), _PUT_WAIT_SECONDS)
            return True
        except asyncio.TimeoutError:
            return None

    # -- job accounting --------------------------------------------------

    def job_started(self) -> None:
        self.pending += 1
        self._idle.clear()

    def _job_finished(self) -> None:
        self.pending -= 1
        if self.pending == 0:
            self._idle.set()

    def job_finished_threadsafe(self) -> None:
        self.loop.call_soon_threadsafe(self._job_finished)

    async def wait_idle(self) -> None:
        """Wait until every admitted job finished and the outbox drained."""
        await self._idle.wait()
        while not (self.outbox.empty() or self.gone.is_set()):
            await asyncio.sleep(0.01)

    # -- teardown --------------------------------------------------------

    async def _sender(self) -> None:
        try:
            while True:
                text = await self.outbox.get()
                if text is None:
                    break
                self.writer.write(text.encode("utf-8"))
                await self.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self.mark_gone()

    def mark_gone(self) -> None:
        """Flag the peer unreachable, unblock producers *and* the sender."""
        if self.gone.is_set():
            return
        self.gone.set()
        while True:  # free a producer blocked on a full outbox
            try:
                self.outbox.get_nowait()
            except asyncio.QueueEmpty:
                break
        # Wake a sender parked on the now-empty outbox: close() skips
        # its own sentinel once ``gone`` is set, so without this the
        # sender would wait forever and close() would await it forever
        # (leaking the handler and hanging the SIGTERM drain).  When
        # the sender already exited the sentinel just stays queued,
        # which is harmless.
        self.outbox.put_nowait(None)

    def abort_threadsafe(self) -> None:
        """Give up on this peer from the execution thread: mark it gone
        and reset the transport, so the connection's reader unblocks
        and the client sees a hangup rather than silence."""
        def _abort() -> None:
            self.mark_gone()
            transport = self.writer.transport
            if transport is not None:
                transport.abort()

        try:
            self.loop.call_soon_threadsafe(_abort)
        except RuntimeError:  # pragma: no cover - loop torn down
            pass

    async def close(self) -> None:
        # The sender's own teardown sets ``gone`` after a normal
        # sentinel exit, so sample the peer's state *now*: only a peer
        # already known unreachable gets the abortive path below.
        peer_gone = self.gone.is_set()
        if peer_gone:
            # mark_gone() already queued the stop sentinel; the cancel
            # covers the one remaining way the sender can hang — blocked
            # in drain() against a peer that stopped reading.
            self.sender_task.cancel()
        else:
            try:
                self.outbox.put_nowait(None)
            except asyncio.QueueFull:
                peer_gone = True
                self.mark_gone()
                self.sender_task.cancel()
        try:
            await self.sender_task
        except asyncio.CancelledError:  # pragma: no cover - close cancelled
            pass
        try:
            if peer_gone and self.writer.transport is not None:
                # Don't wait for buffered frames to flush to a peer that
                # is gone (or refused to read them): reset instead, or
                # wait_closed() below could block the drain forever.
                self.writer.transport.abort()
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _Job:
    """One admitted work request, queued for the execution lane."""

    __slots__ = ("request", "conn", "admitted_at")

    def __init__(self, request: Request, conn: _Connection):
        self.request = request
        self.conn = conn
        self.admitted_at = now()


class ServingDaemon:
    """The long-lived serving process behind ``repro serve``.

    ``processes`` opens a store-attached worker pool for intra-request
    parallelism (``None``/``0`` executes in-process).  ``queue_depth``
    bounds admission; ``outbox_depth`` bounds each connection's send
    buffer (frames, not bytes).  ``default_timeout`` caps requests that
    do not bring their own ``timeout``.  ``terminal_grace`` is how long
    past a request's expired deadline the daemon keeps offering the
    terminal frame to a full outbox before hanging up on the client
    (a request's deadline bounds the lane's total occupancy, delivery
    backpressure included).  ``warm=True`` preloads every stored index
    at boot.  ``port=0`` binds an ephemeral port — :attr:`port` holds
    the real one after :meth:`start`.  ``max_lag`` is a freshness
    budget in seconds: a query against a key whose oldest unflushed
    append is older than the budget triggers a flush first (``None``
    flushes only on request).
    """

    def __init__(
        self,
        store: IndexStore | str | os.PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int | None = None,
        queue_depth: int = 64,
        outbox_depth: int = 256,
        capacity: int = 16,
        default_timeout: float | None = None,
        terminal_grace: float = 5.0,
        pool_min_windows: int = 2,
        warm: bool = True,
        max_lag: float | None = None,
    ):
        if max_lag is not None and max_lag < 0:
            raise InvalidParameterError("max_lag must be non-negative")
        self.store = store if isinstance(store, IndexStore) else IndexStore(store)
        self.max_lag = max_lag
        self.host = host
        self.port = port
        self.processes = processes or None
        self.queue_depth = queue_depth
        self.outbox_depth = outbox_depth
        self.default_timeout = default_timeout
        self.terminal_grace = terminal_grace
        self.pool_min_windows = pool_min_windows
        self.warm = warm
        self.registry = CoreIndexRegistry(capacity=capacity, store=self.store)
        self.pool = None
        self._graphs: dict[str, object] = {}
        self._graph_lock = threading.Lock()
        #: Per-key durable ingestion state; touched only on the
        #: execution lane.  ``_read_only`` holds the reason ingestion
        #: was disabled (a WAL disk error), ``None`` while writable.
        self._ingests: dict[str, _IngestState] = {}
        self._read_only: str | None = None
        self._conns: set[_Connection] = set()
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.base_events.Server | None = None
        self._drain_task: asyncio.Task | None = None
        self._exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-daemon-exec"
        )
        self._draining = False
        self._stopped: asyncio.Event | None = None

        m = get_registry()
        self.instance = next_instance("daemon")
        inst = self.instance
        self._c_accepted = m.counter(
            "repro_daemon_accepted_total",
            "Work requests admitted to the queue",
            ("daemon",),
        ).labels(inst)
        self._c_completed = m.counter(
            "repro_daemon_completed_total",
            "Admitted requests that produced a terminal ok frame",
            ("daemon",),
        ).labels(inst)
        self._c_cancelled = m.counter(
            "repro_daemon_cancelled_total",
            "Admitted requests dropped because the client went away",
            ("daemon",),
        ).labels(inst)
        self._c_failed = m.counter(
            "repro_daemon_failed_total",
            "Admitted requests that ended in an error frame",
            ("daemon",),
        ).labels(inst)
        self._rejected = m.counter(
            "repro_daemon_rejected_total",
            "Requests refused before admission, by reason",
            ("daemon", "reason"),
        )
        self._g_depth = m.gauge(
            "repro_daemon_queue_depth",
            "Admitted requests waiting for the execution lane",
            ("daemon",),
        ).labels(inst)
        self._g_conns = m.gauge(
            "repro_daemon_connections",
            "Open protocol connections",
            ("daemon",),
        ).labels(inst)
        self._g_read_only = m.gauge(
            "repro_daemon_read_only",
            "1 while durable ingestion is disabled after a WAL disk error",
            ("daemon",),
        ).labels(inst)
        self._c_appended = m.counter(
            "repro_daemon_appended_edges_total",
            "Edge events durably acknowledged",
            ("daemon",),
        ).labels(inst)
        self._c_flushes = m.counter(
            "repro_daemon_flushes_total",
            "Flush requests that advanced a snapshot",
            ("daemon",),
        ).labels(inst)
        self._c_incremental_folds = m.counter(
            "repro_daemon_incremental_folds_total",
            "Flushes served by an incremental delta-fold",
            ("daemon",),
        ).labels(inst)
        self._c_full_rebuilds = m.counter(
            "repro_daemon_full_rebuilds_total",
            "Flushes served by a full snapshot rebuild",
            ("daemon",),
        ).labels(inst)
        self._c_lag_flushes = m.counter(
            "repro_daemon_lag_flushes_total",
            "Flushes triggered on the query path by the max_lag budget",
            ("daemon",),
        ).labels(inst)
        self._h_request_seconds = m.histogram(
            "repro_daemon_request_seconds",
            "Admission-to-terminal-frame latency, by op",
            ("daemon", "op"),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, warm the store, start the drain task."""
        if self.warm:
            await asyncio.get_running_loop().run_in_executor(
                self._exec, self._boot_warm
            )
        if self.processes:
            from repro.serve.parallel import WorkerPool

            self.pool = WorkerPool(
                self.store,
                processes=self.processes,
                min_parallel_windows=self.pool_min_windows,
                _fault_path=os.environ.get(FAULT_PATH_ENV) or None,
            )
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        self._drain_task = asyncio.ensure_future(self._drain_requests())

    async def run(self, *, announce: bool = False) -> int:
        """Start, optionally announce readiness on stdout, serve until
        drained; the ``repro serve`` entry point."""
        await self.start()
        if announce:
            print(
                json.dumps(
                    {
                        "event": "ready",
                        "host": self.host,
                        "port": self.port,
                        "pid": os.getpid(),
                    }
                ),
                flush=True,
            )
        await self.wait_stopped()
        return 0

    def begin_shutdown(self) -> None:
        """Start the graceful drain; idempotent, loop-thread only."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        # The sentinel queues *behind* every admitted job (FIFO), so
        # in-flight work finishes before the lane shuts down; admission
        # is already closed, so the put always lands.
        asyncio.ensure_future(self._queue.put(_STOP))

    async def wait_stopped(self) -> None:
        """Wait for the drain to finish, then tear everything down."""
        await self._stopped.wait()
        await self._drain_task
        # Snapshot on the way down: everything the registry built (or
        # gap-filled) lands in the store so the next boot warms.
        await asyncio.get_running_loop().run_in_executor(
            self._exec, self.registry.persist_all
        )
        # Seal the ingestion logs on the lane's own thread (appends ran
        # there, so this orders after the last acknowledged write).
        await asyncio.get_running_loop().run_in_executor(
            self._exec, self._close_wals
        )
        if self.pool is not None:
            self.pool.close()
        for conn in list(self._conns):
            await conn.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._exec.shutdown(wait=True)

    async def __aenter__(self) -> "ServingDaemon":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        self.begin_shutdown()
        await self.wait_stopped()

    # ------------------------------------------------------------------
    # Store plumbing (execution thread)
    # ------------------------------------------------------------------

    def _boot_warm(self) -> None:
        for key in self.store.keys():
            graph = self._graph(key)
            for k in self.store.stored_ks(key):
                self.registry.get(graph, k, store=self.store)

    def _graph(self, key: str | None):
        key = self.store.only_key(key)
        with self._graph_lock:
            graph = self._graphs.get(key)
            if graph is None:
                graph = self.store.load_graph(key)
                self._graphs[key] = graph
        return graph

    # ------------------------------------------------------------------
    # Connection handling (event loop)
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
        except (ConnectionError, OSError):
            writer.close()
            return
        except ValueError:  # oversized first line — answer and hang up
            self._rejected.labels(self.instance, "protocol").inc()
            try:
                writer.write(
                    encode_frame(
                        error_frame(
                            None,
                            "too-large",
                            f"request line exceeded {MAX_LINE_BYTES} bytes",
                        )
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        if first.startswith((b"GET ", b"HEAD ")):
            await self._serve_http(first, reader, writer)
            return
        conn = _Connection(self, writer, self.outbox_depth)
        self._conns.add(conn)
        self._g_conns.set(len(self._conns))
        try:
            line = first
            while line:
                await self._handle_line(conn, line)
                if conn.gone.is_set():
                    break
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line overran the reader limit: the boundary is
                    # lost, report and hang up.
                    self._rejected.labels(self.instance, "protocol").inc()
                    await conn.send(
                        error_frame(
                            None,
                            "too-large",
                            f"request line exceeded {MAX_LINE_BYTES} bytes",
                        )
                    )
                    break
            # EOF (or give-up): let admitted jobs finish and the outbox
            # flush before closing — a half-closed client still gets
            # its answers.
            await conn.wait_idle()
        except (ConnectionError, OSError):
            conn.mark_gone()
        finally:
            if conn.pending:
                # Jobs still queued or running for a dead connection:
                # flag it so they cancel instead of blocking the lane.
                conn.mark_gone()
            await conn.close()
            self._conns.discard(conn)
            self._g_conns.set(len(self._conns))

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        if not line.strip():
            return
        try:
            request = parse_request(decode_frame(line))
        except ProtocolError as exc:
            self._rejected.labels(self.instance, "protocol").inc()
            await conn.send(error_frame(None, exc.code, str(exc)))
            return
        if not request.is_work:
            await self._handle_control(conn, request)
            return
        if self._draining:
            self._rejected.labels(self.instance, "draining").inc()
            await conn.send(
                error_frame(request.id, "draining", "daemon is shutting down")
            )
            return
        job = _Job(request, conn)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self._rejected.labels(self.instance, "overloaded").inc()
            await conn.send(
                error_frame(
                    request.id,
                    "overloaded",
                    f"request queue is full (depth {self.queue_depth}); back off",
                )
            )
            return
        conn.job_started()
        self._c_accepted.inc()
        self._g_depth.set(self._queue.qsize())

    async def _handle_control(self, conn: _Connection, request: Request) -> None:
        if request.op == "ping":
            await conn.send(ok_frame(request.id, pong=True))
        elif request.op == "stats":
            # stats() scans the store on disk (keys + manifests); keep
            # that I/O off the loop thread — and off the execution lane,
            # so stats stay answerable while a long query runs.
            payload = await asyncio.get_running_loop().run_in_executor(
                None, self.stats
            )
            await conn.send(ok_frame(request.id, stats=payload))
        elif request.op == "shutdown":
            await conn.send(ok_frame(request.id, draining=True))
            self.begin_shutdown()

    async def _serve_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Answer one HTTP/1.0 request — the ``/metrics`` endpoint."""
        try:
            while True:  # drain request headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
        except (ValueError, ConnectionError, OSError):
            pass
        parts = first.decode("latin-1").split()
        path = parts[1].split("?")[0] if len(parts) > 1 else "/"
        if path == "/metrics":
            status, ctype = "200 OK", PROMETHEUS_CONTENT_TYPE
            body = get_registry().render_prometheus().encode("utf-8")
        elif path in ("/health", "/ping"):
            status, ctype = "200 OK", "text/plain; charset=utf-8"
            body = b"ok\n"
        else:
            status, ctype = "404 Not Found", "text/plain; charset=utf-8"
            body = b"not found (try /metrics)\n"
        head = (
            f"HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------
    # The execution lane
    # ------------------------------------------------------------------

    async def _drain_requests(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is _STOP:
                break
            self._g_depth.set(self._queue.qsize())
            await loop.run_in_executor(self._exec, self._run_job, job)
        self._stopped.set()

    def _run_job(self, job: _Job) -> None:
        """Execute one admitted request; runs in the execution thread.

        Every admitted job ends in exactly one outcome counter:
        ``completed`` (terminal ok frame), ``failed`` (error frame) or
        ``cancelled`` (client gone — nothing to answer), so
        ``accepted == completed + cancelled + failed`` always
        reconciles.
        """
        request, conn = job.request, job.conn
        try:
            if conn.gone.is_set():
                self._c_cancelled.inc()
                return
            deadline = Deadline(
                request.timeout
                if request.timeout is not None
                else self.default_timeout,
                cancelled=conn.gone.is_set,
            )
            try:
                frame = self._answer(request, conn, deadline)
            except _ReadOnlyError as exc:
                self._c_failed.inc()
                self._send_terminal(
                    conn, error_frame(request.id, "read-only", str(exc)), deadline
                )
                return
            except ReproError as exc:
                self._c_failed.inc()
                self._send_terminal(
                    conn, error_frame(request.id, "invalid", str(exc)), deadline
                )
                return
            except Exception as exc:  # noqa: BLE001 - the lane must survive
                self._c_failed.inc()
                self._send_terminal(
                    conn,
                    error_frame(
                        request.id, "internal", f"{type(exc).__name__}: {exc}"
                    ),
                    deadline,
                )
                return
            if conn.gone.is_set():
                self._c_cancelled.inc()
                return
            # Count before queuing: a client that reads its terminal
            # frame and immediately asks for stats must see the request
            # already counted.
            self._c_completed.inc()
            self._send_terminal(conn, frame, deadline)
        finally:
            self._h_request_seconds.labels(self.instance, request.op).observe(
                now() - job.admitted_at
            )
            conn.job_finished_threadsafe()

    def _send_terminal(
        self, conn: _Connection, frame: dict, deadline: Deadline
    ) -> bool:
        """Deliver a request's terminal frame from the execution thread.

        The put feels backpressure like any other frame, but never past
        the request's time budget: the client gets until the deadline
        plus :attr:`terminal_grace` to drain one outbox slot, after
        which the daemon hangs up on it (a reader that will not even
        take the abort notice is indistinguishable from a dead one) so
        the lane can move on.  Requests without a timeout keep pure
        backpressure.  The caller counts the outcome *before* this runs
        (delivery does not change what the request produced); returns
        whether the frame was queued."""
        grace = Deadline(
            None
            if deadline.remaining is None
            else deadline.remaining + self.terminal_grace,
            cancelled=conn.gone.is_set,
        )
        if conn.send_frame_threadsafe(frame, deadline=grace):
            return True
        if not conn.gone.is_set():
            conn.abort_threadsafe()
        return False

    def _answer(
        self, request: Request, conn: _Connection, deadline: Deadline
    ) -> dict:
        """Resolve, plan and execute one work request; the terminal frame."""
        if request.op == "append":
            return self._answer_append(request)
        if request.op == "flush":
            return self._answer_flush(request)
        self._maybe_flush_for_lag(request.graph)
        graph = self._graph(request.graph)
        index = self.registry.get(graph, request.k, store=self.store)
        ranges = list(request.ranges)
        sinks = None
        if request.op == "query":
            sinks = [
                _BridgeSink(
                    conn,
                    request.id,
                    edge_ids=request.edge_ids,
                    deadline=deadline,
                )
            ]
        plan = plan_for_index(index, ranges, sinks=sinks)
        results = execute_plan(
            plan,
            registry=self.registry,
            store=self.store,
            deadline=deadline,
            parallel=self.pool,
        )
        if request.op == "query":
            result = results[0]
            return done_frame(
                request.id,
                num_results=result.num_results,
                total_edges=result.total_edges,
                completed=result.completed,
            )
        return batch_done_frame(
            request.id,
            [
                {
                    "range": [ts, te],
                    "num_results": result.num_results,
                    "total_edges": result.total_edges,
                    "completed": result.completed,
                }
                for (ts, te), result in zip(ranges, results)
            ],
        )

    # ------------------------------------------------------------------
    # Durable ingestion (execution thread)
    # ------------------------------------------------------------------

    def _ingest_key(self, requested: str | None) -> str:
        """Resolve the store key an ``append``/``flush`` targets.

        An explicit key may name a graph that does not exist yet — that
        is how a fresh stream starts (WAL first, snapshot on flush) —
        but only with a plain path-component name; the wire must never
        choose arbitrary filesystem paths.  Without an explicit key the
        store must hold exactly one graph, as for queries.
        """
        if requested is None:
            return self.store.only_key(None)
        if not _SAFE_KEY.match(requested):
            raise StoreError(
                f"invalid store key {requested!r}: keys are plain names "
                f"(letters, digits, '.', '_', '-')"
            )
        return requested

    def _ingest_state(self, key: str) -> _IngestState:
        state = self._ingests.get(key)
        if state is None:
            wal = self.store.wal(key)
            last = wal.last_event_time
            try:
                span = self.store.manifest(key).get("fingerprint", {}).get("raw_span")
            except StoreError:
                span = None
            if span:
                last = span[1] if last is None else max(last, span[1])
            state = _IngestState(key, wal, last)
            self._ingests[key] = state
        return state

    def _require_writable(self) -> None:
        if self._read_only is not None:
            raise _ReadOnlyError(
                f"daemon is read-only ({self._read_only}); "
                f"queries keep serving, ingestion is disabled"
            )

    def _enter_read_only(self, reason: str) -> None:
        self._read_only = reason
        self._g_read_only.set(1)

    def _answer_append(self, request: Request) -> dict:
        self._require_writable()
        state = self._ingest_state(self._ingest_key(request.graph))
        if request.dedupe is not None:
            # A retried append must answer the original acknowledgement
            # *before* any ordering validation: its own first delivery
            # already advanced the watermark, so re-validating would
            # reject every legitimate retry as out of order.
            known = state.wal.lookup_token(request.dedupe)
            if known is not None:
                return append_done_frame(
                    request.id, lsn=known[0], appended=known[1]
                )
        last = state.last_raw_time
        for _, _, t in request.edges:
            if last is not None and t < last:
                raise ReproError(
                    f"out-of-order append: {t} < last seen {last} "
                    f"(streams are raw-timestamp ordered)"
                )
            last = t
        try:
            lsn, appended = state.wal.append_edges(
                request.edges, token=request.dedupe
            )
        except OSError as exc:
            # The record may or may not have reached the disk, but it
            # was never acknowledged — the client's retry (same dedupe
            # token) resolves the ambiguity after recovery.  Serving
            # continues; ingestion stops signalling durable when it
            # is not.
            self._enter_read_only(f"WAL write failed: {exc}")
            raise _ReadOnlyError(
                f"append not acknowledged, daemon is now read-only: {exc}"
            ) from exc
        state.last_raw_time = state.wal.last_event_time
        if appended and state.pending_since is None:
            state.pending_since = now()
        self._c_appended.inc(appended)
        return append_done_frame(request.id, lsn=lsn, appended=appended)

    def _answer_flush(self, request: Request) -> dict:
        self._require_writable()
        key = self._ingest_key(request.graph)
        covered, applied = self._flush_key(key)
        return flush_done_frame(request.id, lsn=covered, applied=applied)

    def _try_incremental_flush(self, key, state, events):
        """Delta-fold the replayed events onto the cached snapshot.

        Returns the folded graph when the fast path applies, ``None``
        to fall back to the full rebuild.  The fast path needs the
        cached graph (already fingerprint-consistent with the stored
        snapshot — the daemon is the store's only writer) and a
        loadable index for every stored ``k``; the fold itself bails
        with :class:`FoldFallback` on boundary ties or oversized
        recompute windows, which are equally a full-rebuild signal.
        """
        if not events or key not in self.store.keys():
            return None
        with self._graph_lock:
            graph = self._graphs.get(key)
        if graph is None:
            return None
        stored = self.store.stored_ks(key)
        if not stored:
            return None
        indexes = {}
        for k in stored:
            index = self.store.load_index(graph, k, key=key)
            if index is None:
                return None
            indexes[k] = index
        from repro.core.incremental import FoldFallback, delta_fold

        try:
            result = delta_fold(
                graph,
                indexes,
                [(e.u, e.v, e.t) for e in events],
                max_window_fraction=0.5,
            )
        except FoldFallback:
            return None
        covered = state.wal.last_lsn
        self.store.save_graph(result.graph, name=key, stream_lsn=covered)
        for k in stored:
            self.store.save_index(result.indexes[k], name=key)
        state.wal.trim(covered)
        return result.graph

    def _flush_key(self, key: str) -> tuple[int, int]:
        """Fold the WAL into a fresh snapshot: graph, indexes, trim.

        Until a flush, appended edges are durable but not *queryable* —
        queries answer from the last snapshot.  A flush first attempts
        an incremental delta-fold of the replayed events onto the
        cached snapshot (amortized O(|delta|) on the frontier path);
        when that does not apply it rebuilds the graph from
        (snapshot ∪ replayed log) and every previously stored ``k``
        against it.  Either way it persists the result with the
        covered LSN in one atomic manifest commit, trims covered log
        segments and swaps the daemon's cached graph — after which
        queries see the appended edges.  Returns ``(covered lsn,
        events applied)``.
        """
        state = self._ingest_state(key)
        snapshot_lsn = self.store.stream_lsn(key)
        try:
            events = state.wal.replay(after=snapshot_lsn)
            new_graph = self._try_incremental_flush(key, state, events)
            if new_graph is not None:
                covered = state.wal.last_lsn
                self._c_incremental_folds.inc()
            else:
                edges: list = []
                stored: list[int] = []
                if key in self.store.keys():
                    graph = self.store.load_graph(key)
                    stored = self.store.stored_ks(key)
                    edges = [
                        (
                            graph.label_of(u),
                            graph.label_of(v),
                            graph.raw_time_of(t),
                        )
                        for u, v, t in graph.edges
                    ]
                edges.extend((e.u, e.v, e.t) for e in events)
                if not edges:
                    raise ReproError(f"nothing to flush for key {key!r}")
                covered = state.wal.last_lsn
                new_graph = TemporalGraph(edges)
                self.store.save_graph(new_graph, name=key, stream_lsn=covered)
                if stored:
                    self.store.build_all(new_graph, stored, name=key)
                state.wal.trim(covered)
                self._c_full_rebuilds.inc()
        except OSError as exc:
            self._enter_read_only(f"flush failed: {exc}")
            raise _ReadOnlyError(
                f"flush not completed, daemon is now read-only: {exc}"
            ) from exc
        with self._graph_lock:
            self._graphs[key] = new_graph
        state.pending_since = None
        self._c_flushes.inc()
        return covered, len(events)

    def _maybe_flush_for_lag(self, requested: str | None) -> None:
        """Flush a key on the query path once its lag budget is blown.

        With ``max_lag`` set, a query against a key whose oldest
        unflushed append is older than the budget triggers a flush
        first, so the answer includes the backlog.  This runs on the
        single execution lane — the flush fully completes before the
        query plans, exactly as if the client had sent an explicit
        ``flush``.  A read-only daemon serves the stale snapshot
        instead (queries must keep working when ingestion cannot).
        """
        if self.max_lag is None or self._read_only is not None:
            return
        try:
            key = self.store.only_key(requested)
        except StoreError:
            return
        state = self._ingests.get(key)
        if state is None or state.pending_since is None:
            return
        if now() - state.pending_since <= self.max_lag:
            return
        try:
            self._flush_key(key)
        except _ReadOnlyError:
            # The flush flipped the daemon read-only; the query
            # proceeds against the stale snapshot.
            return
        self._c_lag_flushes.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> dict:
        """The daemon's outcome counters, as plain ints."""
        depth = self._queue.qsize() if self._queue is not None else 0
        return {
            "accepted": int(self._c_accepted.value),
            "completed": int(self._c_completed.value),
            "cancelled": int(self._c_cancelled.value),
            "failed": int(self._c_failed.value),
            "rejected": {
                key[1]: int(child.value)
                for key, child in self._rejected.items()
                if key[0] == self.instance
            },
            "queue_depth": depth,
            "connections": len(self._conns),
            "draining": self._draining,
        }

    def _close_wals(self) -> None:
        for state in self._ingests.values():
            try:
                state.wal.close()
            except OSError:  # pragma: no cover - best-effort seal
                pass

    def stats(self) -> dict:
        """The ``stats`` op payload: daemon, registry, pool, store."""
        return {
            "daemon": self.counters(),
            "registry": self.registry.stats(),
            "pool": self.pool.stats() if self.pool is not None else None,
            "store": {
                "root": str(self.store.root),
                "keys": self.store.keys(),
            },
            "ingest": {
                "read_only": self._read_only,
                "appended_edges": int(self._c_appended.value),
                "flushes": int(self._c_flushes.value),
                "incremental_folds": int(self._c_incremental_folds.value),
                "full_rebuilds": int(self._c_full_rebuilds.value),
                "lag_flushes": int(self._c_lag_flushes.value),
                "max_lag": self.max_lag,
                "keys": {
                    key: {
                        "last_lsn": state.wal.last_lsn,
                        "stream_lsn": self.store.stream_lsn(key),
                        "segments": len(state.wal.segment_paths()),
                        "lag_seconds": (
                            0.0
                            if state.pending_since is None
                            else now() - state.pending_since
                        ),
                    }
                    # stats() runs off-lane; snapshot the dict so a
                    # concurrent first-append insert cannot resize it
                    # mid-iteration.
                    for key, state in list(self._ingests.items())
                },
            },
        }


def main(argv=None) -> int:  # pragma: no cover - thin module runner
    """``python -m repro.serve.daemon`` — defers to the CLI."""
    from repro.cli import main as cli_main

    return cli_main(["serve", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
