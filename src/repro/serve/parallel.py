"""Process-parallel plan execution over the shared mmap store.

One Python process executes one covering window at a time; everything
else about serving (the planner, the store, the columnar walk) is
already shaped for fan-out: plans are inert data, covering windows are
independent units of work, and the :class:`~repro.store.index_store
.IndexStore` gives every process on the machine the *same* flat index
arrays by mmap — zero copy, no pickled edges, no per-worker rebuild.
:class:`WorkerPool` is the executor tier that exploits that:

* **Workers attach, they never build.**  The pool initialiser opens the
  store directory in each worker; graphs and their
  ``FlatVertexCoreTimes``/``FlatEdgeSkyline`` views are loaded lazily by
  store key straight off the blob mappings and cached in a per-worker
  registry.  The parent persists whatever a plan needs (graph blobs,
  index blobs) before dispatching, so a worker's load is always a
  fingerprint-matched mmap open.
* **Work is partitioned by estimated cost.**  Covering windows are
  packed into chunks greedily, largest first (LPT): an ``index``
  window's cost is the number of skyline windows inside its vectorised
  cut (``start_cuts``), a ``direct`` window's its length.  Chunks are
  dispatched in descending cost order, so one giant window runs on one
  worker while the others drain the rest of the batch instead of
  queueing behind it.
* **Results come back columnar.**  A counting request ships three ints;
  a collecting request (or one carrying its own sink) ships the walk's
  per-start-time batches ``(t, ends, prefix_lens, eids)``, which the
  parent replays through the request's sink — custom sinks (NDJSON,
  flat arrays, callbacks) keep working unchanged, in input order.
* **Small plans stay sequential.**  A plan with fewer covering windows
  than ``min_parallel_windows`` (or whose graph cannot be persisted to
  the store) is executed in-process by the ordinary
  :func:`~repro.serve.executor.execute_plan` path — the pool dispatch
  only pays when there is enough independent work to amortise it.
* **Dead workers do not lose the batch.**  A worker SIGKILL'd mid-chunk
  breaks the pool; the pool is rebuilt and the unfinished chunks are
  re-dispatched (chunks are idempotent — nothing escapes a worker until
  its chunk returns).  After ``max_restarts`` rebuilds the remaining
  chunks run sequentially in the parent instead — a crashing batch
  degrades to slow, never to wrong or lost.

Deadlines travel as remaining-seconds: each chunk is stamped at
dispatch time and workers construct their own :class:`Deadline`, so an
expiring batch aborts in the workers just as it would in-process, and
the affected requests come back ``completed=False``.
"""

from __future__ import annotations

import contextlib
import heapq
import os
import shutil
import signal
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.index import CoreIndex, get_core_index
from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError, StoreError
from repro.obs.metrics import MetricsRegistry, get_registry, next_instance, timing_enabled
from repro.obs.timing import Deadline, now
from repro.serve.planner import CoveringWindow, PlanGroup, QueryPlan
from repro.serve.sinks import CountSink, MaterializingSink, ResultSink
from repro.store.index_store import IndexStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.index import CoreIndexRegistry
    from repro.graph.temporal_graph import TemporalGraph

#: Request spec inside a chunk: (request id, ts, te, ship_batches).
_ReqSpec = tuple[int, int, int, bool]


@dataclass(frozen=True)
class _Chunk:
    """One dispatchable unit: some covering windows of one plan group.

    Everything here is plain data (store key instead of graph object,
    request ids instead of sinks), so a chunk pickles in microseconds
    and the worker resolves the heavy state through its own mmap-backed
    store attachment.
    """

    engine: str  # "index" | "direct"
    key: str  # store key of the graph directory
    k: int
    windows: tuple[tuple[int, int, tuple[_ReqSpec, ...]], ...]


class _RecordingSink(ResultSink):
    """Capture the walk's batches verbatim for shipment to the parent.

    The columnar walk never mutates an emitted array afterwards (the
    sink contract), so keeping references is enough — pickling across
    the process boundary materialises them anyway.
    """

    def __init__(self) -> None:
        super().__init__()
        self.batches: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []

    def consume(self, t, ends, prefix_lens, eids) -> None:
        self.batches.append((t, ends, prefix_lens, eids))


def _run_chunk(
    chunk: _Chunk,
    graph: "TemporalGraph",
    timeout: float | None,
    *,
    registry: "CoreIndexRegistry | None",
    store: IndexStore | None,
    index: CoreIndex | None = None,
):
    """Execute a chunk's windows; returns one result tuple per request.

    Shared by the worker processes (graph resolved by store key) and the
    parent's degraded sequential retry (graph passed directly, with the
    already-resolved ``index`` pinned).  Result tuples are
    ``(rid, num_results, total_edges, completed, batches | None)``.
    """
    from repro.serve.columnar import run_columnar_walk
    from repro.serve.executor import _SliceRouter, _group_window_arrays

    deadline = Deadline(timeout) if timeout is not None else None
    specs: list[_ReqSpec] = []
    local_windows: list[CoveringWindow] = []
    for ts, te, reqs in chunk.windows:
        first = len(specs)
        specs.extend(reqs)
        local_windows.append(
            CoveringWindow(ts, te, list(range(first, first + len(reqs))))
        )
    sinks: list[ResultSink] = [
        _RecordingSink() if ship else CountSink() for _, _, _, ship in specs
    ]
    group = PlanGroup(graph, chunk.k, chunk.engine, local_windows, index=index)
    for window, arrays in _group_window_arrays(
        group, registry=registry, store=store, deadline=deadline
    ):
        if window.is_shared:
            target: ResultSink = _SliceRouter(
                [
                    (specs[i][1], specs[i][2], sinks[i])
                    for i in window.requests
                ]
            )
        else:
            target = sinks[window.requests[0]]
        if arrays is None:
            target.finish(False)
            continue
        completed = run_columnar_walk(
            window.ts, window.te, arrays, target, deadline=deadline
        )
        target.finish(completed)
    return [
        (
            rid,
            sink.num_results,
            sink.total_edges,
            sink.completed,
            sink.batches if isinstance(sink, _RecordingSink) else None,
        )
        for (rid, _ts, _te, _ship), sink in zip(specs, sinks)
    ]


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

_WORKER: "_WorkerState | None" = None
_FAULT_PATH: str | None = None


class _WorkerState:
    """Per-worker attachment: store handle, registry, graph cache."""

    def __init__(self, root: str, verify: bool, capacity: int):
        from repro.core.index import CoreIndexRegistry

        self.store = IndexStore(root, verify=verify)
        self.registry = CoreIndexRegistry(capacity=capacity, store=self.store)
        self.graphs: dict[str, "TemporalGraph"] = {}

    def graph(self, key: str) -> "TemporalGraph":
        graph = self.graphs.get(key)
        if graph is None:
            graph = self.store.load_graph(key)
            self.graphs[key] = graph
        return graph


def _worker_init(
    root: str,
    verify: bool,
    capacity: int,
    warm: tuple[tuple[str, int | None], ...],
    fault_path: str | None,
) -> None:
    """Pool initialiser: attach to the store, pre-open the warm set."""
    global _WORKER, _FAULT_PATH
    # Workers are forked from whatever process owns the pool.  An
    # asyncio parent (the serving daemon) has a signal wakeup fd and
    # Python-level SIGTERM/SIGINT handlers installed; both survive the
    # fork, so a signal delivered to a *worker* (e.g. the executor
    # terminating siblings after a broken-pool event) would write into
    # the parent's shared wakeup pipe and masquerade as a parent
    # shutdown request.  Sever that inheritance before doing anything.
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _WORKER = _WorkerState(root, verify, capacity)
    _FAULT_PATH = fault_path
    for key, k in warm:
        try:
            graph = _WORKER.graph(key)
            if k is not None:
                _WORKER.registry.get(graph, k)
        except (StoreError, OSError):  # pragma: no cover - racing writer
            continue  # lazy load will retry (or rebuild) at task time


def _maybe_fault() -> None:
    """Test hook: SIGKILL this worker once if the fault file still exists.

    The file is unlinked *before* the kill, so exactly one worker dies
    exactly once — the recovery path re-runs its chunk on a fresh pool.
    """
    if _FAULT_PATH is None or not os.path.exists(_FAULT_PATH):
        return
    try:
        os.unlink(_FAULT_PATH)
    except FileNotFoundError:  # pragma: no cover - lost the unlink race
        return
    os.kill(os.getpid(), signal.SIGKILL)


def _obs_marks(state: "_WorkerState") -> tuple[int, ...]:
    """Counter readings a chunk's observability delta is diffed against."""
    registry, store = state.registry, state.store
    return (
        registry.hits,
        registry.misses,
        registry.store_hits,
        store.stale_takeovers,
        store.stats()["index_load_hits"],
    )


#: Names of the per-worker counters shipped back to the parent, in the
#: order :func:`_obs_marks` reads them.
_OBS_COUNTER_NAMES = (
    "registry_hits",
    "registry_misses",
    "registry_store_hits",
    "store_stale_takeovers",
    "store_index_load_hits",
)


def _worker_run(chunk: _Chunk, timeout: float | None):
    """Execute one chunk in this worker; ``(entries, obs_delta)``.

    ``obs_delta`` is the chunk's contribution to the worker's local
    metrics registry (counter marks diffed around the run, plus the
    chunk's wall time and window count), shipped as a small plain dict
    for the parent to fold into its pool-labelled instruments — worker
    registries live in other processes and would otherwise be invisible
    (and lost entirely on a worker crash, which is why the delta rides
    the chunk-result protocol instead of a shutdown hook).
    """
    _maybe_fault()
    state = _WORKER
    assert state is not None, "worker not initialised"
    before = _obs_marks(state)
    started = now()
    entries = _run_chunk(
        chunk,
        state.graph(chunk.key),
        timeout,
        registry=state.registry,
        store=state.store,
    )
    delta = dict(
        zip(
            _OBS_COUNTER_NAMES,
            (after - mark for after, mark in zip(_obs_marks(state), before)),
        )
    )
    delta["chunk_seconds"] = now() - started
    delta["windows"] = len(chunk.windows)
    return entries, delta


def _worker_ping(delay: float) -> int:
    """Prestart probe: force a worker process up (and report its pid)."""
    time.sleep(delay)
    return os.getpid()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _partition(
    windows: list[CoveringWindow], costs: list[int], num_chunks: int
) -> list[tuple[list[CoveringWindow], int]]:
    """LPT-pack windows into ``num_chunks`` bins balanced by cost.

    Returns non-empty ``(windows, total_cost)`` bins, heaviest first —
    the dispatch order that keeps a giant window from serialising the
    batch behind it.
    """
    bins: list[list[CoveringWindow]] = [[] for _ in range(num_chunks)]
    totals = [0] * num_chunks
    heap = [(0, j) for j in range(num_chunks)]
    for position in sorted(
        range(len(windows)), key=lambda i: costs[i], reverse=True
    ):
        total, j = heapq.heappop(heap)
        bins[j].append(windows[position])
        totals[j] = total + max(int(costs[position]), 1)
        heapq.heappush(heap, (totals[j], j))
    packed = [
        (bins[j], totals[j]) for j in range(num_chunks) if bins[j]
    ]
    packed.sort(key=lambda item: item[1], reverse=True)
    return packed


class WorkerPool:
    """A persistent pool of store-attached processes executing plans.

    Parameters
    ----------
    store:
        The shared :class:`IndexStore` (or its root path) every worker
        attaches to.  The pool persists graphs and indexes a plan needs
        into it before dispatching, so workers always mmap, never build.
    processes:
        Worker count (default: the machine's CPU count).
    min_parallel_windows:
        Plans with fewer covering windows than this run sequentially
        in-process — pool dispatch only pays off once a batch holds
        several independent windows (set to ``0`` to force dispatch).
    chunks_per_worker:
        Partitioning granularity: windows are packed into up to
        ``processes * chunks_per_worker`` chunks per plan group, which
        bounds per-chunk dispatch overhead while leaving enough pieces
        for balancing.
    verify:
        Whether workers checksum blob payloads on open (see
        :class:`IndexStore`).
    worker_capacity:
        Each worker's registry capacity (attached indexes kept live).
    max_restarts:
        Pool rebuilds tolerated per :meth:`execute` before the remaining
        chunks degrade to sequential parent-side execution.

    Counters: ``tasks_dispatched``, ``sequential_fallbacks`` and
    ``broken_restarts`` expose what the pool actually did — benchmarks
    and tests assert against them.  Since PR 7 they are views over the
    process metrics registry (series labelled with this pool's
    ``pool`` instance label); :meth:`stats` returns the whole
    bookkeeping as one dict, including the per-worker counters each
    chunk ships home and the ``tasks_dispatched == chunks_completed +
    chunks_lost`` crash accounting.

    The pool is a context manager; :meth:`close` shuts the workers down.
    Thread-safety: like the executor it is a single-dispatcher object —
    call :meth:`execute` from one thread at a time.
    """

    def __init__(
        self,
        store: IndexStore | str | os.PathLike,
        *,
        processes: int | None = None,
        min_parallel_windows: int = 2,
        chunks_per_worker: int = 2,
        verify: bool = True,
        worker_capacity: int = 16,
        max_restarts: int = 2,
        metrics: "MetricsRegistry | None" = None,
        _fault_path: str | None = None,
    ):
        if processes is not None and processes < 1:
            raise InvalidParameterError(
                f"processes must be >= 1, got {processes}"
            )
        if min_parallel_windows < 0:
            raise InvalidParameterError(
                f"min_parallel_windows must be >= 0, got {min_parallel_windows}"
            )
        if chunks_per_worker < 1:
            raise InvalidParameterError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.store = store if isinstance(store, IndexStore) else IndexStore(store)
        self.processes = processes if processes else max(1, os.cpu_count() or 1)
        self.min_parallel_windows = min_parallel_windows
        self.chunks_per_worker = chunks_per_worker
        self.verify = verify
        self.worker_capacity = worker_capacity
        self.max_restarts = max_restarts
        self._fault_path = _fault_path
        self._executor: ProcessPoolExecutor | None = None
        # id(graph) -> (graph, key); holding the graph pins the id.
        self._keys: dict[int, tuple["TemporalGraph", str]] = {}
        self._persisted: set[tuple[str, int]] = set()
        self._warm: list[tuple[str, int | None]] = []
        # Pool bookkeeping lives in the metrics registry (the process
        # default unless ``metrics=`` isolates it); the legacy counter
        # attributes read back through it.
        self.metrics = metrics if metrics is not None else get_registry()
        self.instance = next_instance("pool")
        m, inst = self.metrics, self.instance
        self._c_tasks_dispatched = m.counter(
            "repro_pool_tasks_dispatched_total",
            "Chunks submitted to worker processes",
            ("pool",),
        ).labels(inst)
        self._c_sequential_fallbacks = m.counter(
            "repro_pool_sequential_fallbacks_total",
            "Plans served in-process (too small, or unpersistable graph)",
            ("pool",),
        ).labels(inst)
        self._c_broken_restarts = m.counter(
            "repro_pool_broken_restarts_total",
            "Pool rebuilds after a worker death",
            ("pool",),
        ).labels(inst)
        self._c_chunks_lost = m.counter(
            "repro_pool_chunks_lost_total",
            "Dispatched chunks lost to worker deaths (later re-run)",
            ("pool",),
        ).labels(inst)
        chunks_completed = m.counter(
            "repro_pool_chunks_completed_total",
            "Chunks finished, by where they ran (worker or degraded parent)",
            ("pool", "where"),
        )
        self._c_chunks_worker = chunks_completed.labels(inst, "worker")
        self._c_chunks_parent = chunks_completed.labels(inst, "parent")
        self._worker_counters = m.counter(
            "repro_pool_worker_counters_total",
            "Per-worker registry/store counters aggregated from chunk deltas",
            ("pool", "counter"),
        )
        self._h_chunk_seconds = m.histogram(
            "repro_pool_chunk_seconds",
            "Chunk wall time as measured where the chunk ran",
            ("pool",),
        ).labels(inst)

    def __repr__(self) -> str:
        return (
            f"WorkerPool({str(self.store.root)!r}, processes={self.processes}, "
            f"dispatched={self.tasks_dispatched})"
        )

    # -- legacy counter attributes, now views over the metrics registry --

    @property
    def tasks_dispatched(self) -> int:
        return int(self._c_tasks_dispatched.value)

    @property
    def sequential_fallbacks(self) -> int:
        return int(self._c_sequential_fallbacks.value)

    @property
    def broken_restarts(self) -> int:
        return int(self._c_broken_restarts.value)

    @property
    def chunks_lost(self) -> int:
        return int(self._c_chunks_lost.value)

    def stats(self) -> dict:
        """The pool's bookkeeping as one dict view over the registry.

        ``chunks_completed`` splits finished chunks by where they ran;
        ``tasks_dispatched == chunks_completed["worker"] + chunks_lost``
        always holds (lost chunks re-run as fresh dispatches, or in the
        parent once restarts are exhausted).  ``worker_counters`` are
        the per-worker registry/store counters each chunk ships home —
        present even for chunks whose worker later died, because the
        delta rides the chunk-result protocol.
        """
        worker_counters = {
            key[1]: int(child.value)
            for key, child in self._worker_counters.items()
            if key[0] == self.instance
        }
        return {
            "processes": self.processes,
            "tasks_dispatched": self.tasks_dispatched,
            "sequential_fallbacks": self.sequential_fallbacks,
            "broken_restarts": self.broken_restarts,
            "chunks_lost": self.chunks_lost,
            "chunks_completed": {
                "worker": int(self._c_chunks_worker.value),
                "parent": int(self._c_chunks_parent.value),
            },
            "worker_counters": worker_counters,
        }

    def _merge_worker_delta(self, delta: dict) -> None:
        """Fold one chunk's shipped observability delta into the pool."""
        for name in _OBS_COUNTER_NAMES:
            amount = delta.get(name, 0)
            if amount:
                self._worker_counters.labels(self.instance, name).inc(amount)
        windows = delta.get("windows", 0)
        if windows:
            self._worker_counters.labels(self.instance, "windows").inc(windows)
        if timing_enabled():
            self._h_chunk_seconds.observe(delta.get("chunk_seconds", 0.0))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker processes down (the pool can be reused after)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Store preparation
    # ------------------------------------------------------------------

    def ensure_graph(self, graph: "TemporalGraph") -> str:
        """Persist ``graph`` into the pool store (idempotent); its key.

        Raises :class:`StoreError` for graphs the store cannot hold
        (non-``str``/``int`` labels) — :meth:`execute` catches that and
        degrades to sequential in-process execution.
        """
        cached = self._keys.get(id(graph))
        if cached is not None and cached[0] is graph:
            return cached[1]
        key = self.store.save_graph(graph)
        self._keys[id(graph)] = (graph, key)
        if (key, None) not in self._warm:
            self._warm.append((key, None))
        return key

    def ensure_index(self, index: CoreIndex) -> str:
        """Persist ``index`` (and its graph) into the pool store; the key.

        Already-persisted ``(key, k)`` pairs are remembered, so the
        steady state costs one set lookup — no manifest probe, no blob
        write.  Freshly persisted pairs join the warm list handed to
        newly spawned workers.
        """
        key = self.ensure_graph(index.graph)
        pair = (key, index.k)
        if pair not in self._persisted:
            if not self.store.has_index(index.graph, index.k, key=key):
                self.store.save_index(index, name=key)
            self._persisted.add(pair)
            self._warm.append(pair)
        return key

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.processes,
                initializer=_worker_init,
                initargs=(
                    str(self.store.root),
                    self.verify,
                    self.worker_capacity,
                    tuple(self._warm),
                    self._fault_path,
                ),
            )
        return self._executor

    def prestart(self) -> list[int]:
        """Spawn every worker now (mmap attach included); their pids.

        Benchmarks and latency-sensitive callers pay the interpreter
        start-up and store attachment up front instead of inside the
        first measured batch.  The slight ping delay keeps the executor
        from serving all probes from one eagerly recycled worker.
        """
        executor = self._ensure_executor()
        futures = [
            executor.submit(_worker_ping, 0.05) for _ in range(self.processes)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _prepare_group(
        self, group: PlanGroup, registry: "CoreIndexRegistry | None"
    ) -> tuple[str, CoreIndex | None, list[int]]:
        """Persist what the group needs; ``(key, index, window costs)``.

        ``index`` groups resolve their shared index parent-side (pinned
        on the group, else registry → store → build) exactly once, and
        its skyline's vectorised ``start_cuts`` yield every covering
        window's cost estimate — the count of skyline windows in the
        cut, which is what the walk streams.  ``direct`` windows cost
        their length (Algorithm 2 scans the window).
        """
        if group.engine == "index":
            index = group.index
            if index is None:
                index = get_core_index(
                    group.graph, group.k, registry=registry, store=self.store
                )
            key = self.ensure_index(index)
            los, his = index.ecs.start_cuts(
                [window.ts for window in group.windows],
                [window.te for window in group.windows],
            )
            costs = [int(cost) for cost in (his - los)]
            return key, index, costs
        key = self.ensure_graph(group.graph)
        costs = [window.te - window.ts + 1 for window in group.windows]
        return key, None, costs

    def execute(
        self,
        plan: QueryPlan,
        *,
        registry: "CoreIndexRegistry | None" = None,
        collect: bool = False,
        deadline: Deadline | None = None,
    ) -> list[EnumerationResult]:
        """Run ``plan`` across the pool; one result per request, in order.

        The parallel twin of :func:`~repro.serve.executor.execute_plan`
        (which forwards here when called with ``parallel=``): same
        arguments, same results, same sink semantics.  Plans below the
        ``min_parallel_windows`` threshold — and plans whose graph the
        store cannot persist — run sequentially in-process instead.
        """
        from repro.serve.executor import execute_plan

        if plan.num_windows < self.min_parallel_windows:
            self._c_sequential_fallbacks.inc()
            return execute_plan(
                plan,
                registry=registry,
                store=self.store,
                collect=collect,
                deadline=deadline,
            )
        try:
            prepared = [
                self._prepare_group(group, registry) for group in plan.groups
            ]
        except (StoreError, OSError):
            # The store cannot hold this plan's graphs (labels, disk):
            # serve correctly in-process rather than fail the batch.
            self._c_sequential_fallbacks.inc()
            return execute_plan(
                plan, registry=registry, collect=collect, deadline=deadline
            )

        chunks: list[_Chunk] = []
        context: list[tuple["TemporalGraph", CoreIndex | None]] = []
        for group, (key, index, costs) in zip(plan.groups, prepared):
            num_chunks = min(
                len(group.windows), self.processes * self.chunks_per_worker
            )
            for windows, _cost in _partition(group.windows, costs, num_chunks):
                chunks.append(
                    _Chunk(
                        group.engine,
                        key,
                        group.k,
                        tuple(
                            (
                                window.ts,
                                window.te,
                                tuple(
                                    (
                                        rid,
                                        plan.requests[rid].ts,
                                        plan.requests[rid].te,
                                        collect
                                        or plan.requests[rid].sink is not None,
                                    )
                                    for rid in window.requests
                                ),
                            )
                            for window in windows
                        ),
                    )
                )
                context.append((group.graph, index))

        results = self._dispatch(chunks, context, registry, deadline)

        sinks: list[ResultSink] = [
            request.sink
            if request.sink is not None
            else (MaterializingSink() if collect else CountSink())
            for request in plan.requests
        ]
        for rid, sink in enumerate(sinks):
            num, total, completed, batches = results[rid]
            if batches is not None:
                for t, ends, prefix_lens, eids in batches:
                    sink.emit(t, ends, prefix_lens, eids)
            else:
                sink.num_results += num
                sink.total_edges += total
            sink.finish(completed)
        return [
            sink.result("enum", request.k, request.time_range)
            for request, sink in zip(plan.requests, sinks)
        ]

    def _dispatch(
        self,
        chunks: list[_Chunk],
        context: list[tuple["TemporalGraph", CoreIndex | None]],
        registry: "CoreIndexRegistry | None",
        deadline: Deadline | None,
    ) -> dict[int, tuple[int, int, int | bool, list | None]]:
        """Run every chunk, surviving worker deaths; results per request.

        Chunks are idempotent (nothing leaves a worker until its chunk
        returns), so a :class:`BrokenProcessPool` simply re-dispatches
        whatever had not finished on a fresh pool; after
        ``max_restarts`` rebuilds the leftovers run in the parent.

        Accounting survives the crashes: every dispatched-but-broken
        chunk is recorded in ``chunks_lost`` (whether its future broke
        at submit or result time), so ``tasks_dispatched`` always equals
        worker-completed chunks plus lost ones, and a recovered batch's
        re-run work is never silently folded into the original
        dispatch counts.  Degraded parent-side runs count under
        ``chunks_completed{where="parent"}`` — their registry/store
        activity lands directly on the parent's own instruments, so
        only the chunk itself is recorded here.
        """
        results: dict[int, tuple] = {}
        pending = list(range(len(chunks)))
        restarts = 0
        while pending:
            if restarts > self.max_restarts:
                for ci in pending:
                    graph, index = context[ci]
                    timeout = deadline.remaining if deadline else None
                    started = now()
                    for entry in _run_chunk(
                        chunks[ci],
                        graph,
                        timeout,
                        registry=registry,
                        store=self.store,
                        index=index,
                    ):
                        results[entry[0]] = entry[1:]
                    self._c_chunks_parent.inc()
                    if timing_enabled():
                        self._h_chunk_seconds.observe(now() - started)
                break
            executor = self._ensure_executor()
            broken: list[int] = []
            futures = []
            try:
                for ci in pending:
                    timeout = deadline.remaining if deadline else None
                    futures.append(
                        (executor.submit(_worker_run, chunks[ci], timeout), ci)
                    )
                    self._c_tasks_dispatched.inc()
            except BrokenProcessPool:
                # The pool died while we were still submitting: whatever
                # was not yet submitted retries with the rest.  The
                # already-submitted futures were dispatched and are now
                # lost with the pool.
                broken.extend(ci for _, ci in futures)
                broken.extend(pending[len(futures):])
                self._c_chunks_lost.inc(len(futures))
                futures = []
            for future, ci in futures:
                try:
                    entries, delta = future.result()
                except BrokenProcessPool:
                    broken.append(ci)
                    self._c_chunks_lost.inc()
                    continue
                for entry in entries:
                    results[entry[0]] = entry[1:]
                self._c_chunks_worker.inc()
                self._merge_worker_delta(delta)
            if broken:
                restarts += 1
                self._c_broken_restarts.inc()
                self.close()  # rebuild on next loop with the warm list
            pending = broken
        return results


@contextlib.contextmanager
def open_pool(
    processes: int | None = None,
    *,
    store: IndexStore | str | os.PathLike | None = None,
    **kwargs,
):
    """A :class:`WorkerPool` as a context — over ``store`` or a temp one.

    Without ``store`` an ephemeral store directory is created for the
    pool's lifetime and removed afterwards — the shape behind the legacy
    ``run_query_batch(processes=N)`` signature, where the caller has no
    store of their own but still wants the zero-copy fan-out (the
    parent persists once; workers attach by mmap).
    """
    tmp = None
    if store is None:
        tmp = tempfile.mkdtemp(prefix="repro-pool-")
        store = tmp
    try:
        pool = WorkerPool(store, processes=processes, **kwargs)
        try:
            yield pool
        finally:
            pool.close()
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
