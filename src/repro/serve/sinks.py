"""Result sinks — where enumerated temporal k-cores go.

The columnar enumeration core (:mod:`repro.serve.columnar`) does not
build result objects.  Per start time ``ts`` it emits one *batch*: the
end-sorted run of edge ids alive at ``ts`` plus, for every reported
core, its TTI end and its prefix length into that run.  A
:class:`ResultSink` consumes those batches; what it does with them is
the delivery policy:

* :class:`MaterializingSink` — builds the back-compat
  :class:`~repro.core.results.EnumerationResult` with one
  :class:`~repro.core.results.TemporalKCore` per core;
* :class:`CallbackSink` — replays the historical streaming-callback
  protocol (``(ts, te, live_prefix_list)`` per core);
* :class:`CountSink` — counters only (``num_results`` / ``|R|``), no
  per-core Python objects at all;
* :class:`NDJSONSink` — one JSON line per core written straight to a
  text stream, so wide-window answers never reside in memory;
* :class:`FlatArraySink` — columnar accumulation: flat int64 TTI /
  length arrays plus the shared edge runs, the zero-object in-memory
  form for analytical post-processing.

Contract
--------

``emit(ts, ends, prefix_lens, eids)`` receives int64 ndarrays:
``ends`` ascending TTI end times of the cores reported at ``ts``,
``prefix_lens`` the matching prefix lengths, and ``eids`` the shared
end-sorted edge run — core ``i`` is ``eids[:prefix_lens[i]]`` with TTI
``(ts, ends[i])``.  The arrays are never mutated afterwards by the
producer, so sinks may keep (views of) them without copying.  Sinks
must not mutate them either.  ``finish(completed)`` is called exactly
once at the end of a walk (``completed=False`` after a deadline abort);
``result()`` packages the counters as an ``EnumerationResult``.
"""

from __future__ import annotations

import json
from typing import IO

import numpy as np

from repro.core.results import EnumerationResult, ResultCallback, TemporalKCore


class ResultSink:
    """Base sink: counter accounting shared by every delivery policy.

    Subclasses override :meth:`consume` (called after the counters are
    updated) rather than :meth:`emit`, so ``num_results`` /
    ``total_edges`` stay consistent across sink kinds.
    """

    #: Whether the produced :class:`EnumerationResult` carries cores.
    collects = False

    def __init__(self) -> None:
        self.num_results = 0
        self.total_edges = 0
        self.completed = True

    def emit(
        self,
        ts: int,
        ends: np.ndarray,
        prefix_lens: np.ndarray,
        eids: np.ndarray,
    ) -> None:
        """Account one per-``ts`` batch and hand it to :meth:`consume`."""
        self.num_results += len(ends)
        self.total_edges += int(prefix_lens.sum())
        self.consume(ts, ends, prefix_lens, eids)

    def consume(
        self,
        ts: int,
        ends: np.ndarray,
        prefix_lens: np.ndarray,
        eids: np.ndarray,
    ) -> None:
        """Deliver one batch (counters already updated).  Default: drop."""

    def finish(self, completed: bool) -> None:
        """Mark the end of the walk feeding this sink."""
        self.completed = self.completed and completed

    def result(
        self, algorithm: str, k: int, time_range: tuple[int, int]
    ) -> EnumerationResult:
        """The counters (and any collected cores) as an ``EnumerationResult``."""
        return EnumerationResult(
            algorithm,
            k,
            time_range,
            num_results=self.num_results,
            total_edges=self.total_edges,
            completed=self.completed,
        )


class CountSink(ResultSink):
    """Counters only — the batch/streaming default (``collect=False``)."""


class MaterializingSink(ResultSink):
    """Materialise every core — the back-compat ``collect=True`` sink."""

    collects = True

    def __init__(self) -> None:
        super().__init__()
        self.cores: list[TemporalKCore] = []

    def consume(self, ts, ends, prefix_lens, eids) -> None:
        run = eids.tolist()
        for te, n in zip(ends.tolist(), prefix_lens.tolist()):
            self.cores.append(TemporalKCore((ts, te), tuple(run[:n])))

    def result(self, algorithm, k, time_range) -> EnumerationResult:
        out = super().result(algorithm, k, time_range)
        out.cores = self.cores
        return out


class CallbackSink(ResultSink):
    """Replay the historical ``(ts, te, live_prefix)`` callback protocol.

    The callback receives a *live, growing* list per start time (the
    documented :data:`~repro.core.results.ResultCallback` contract) —
    consumers that retain it must copy, exactly as before.
    """

    def __init__(self, callback: ResultCallback) -> None:
        super().__init__()
        self.callback = callback

    def consume(self, ts, ends, prefix_lens, eids) -> None:
        run = eids.tolist()
        prefix: list[int] = []
        for te, n in zip(ends.tolist(), prefix_lens.tolist()):
            prefix.extend(run[len(prefix):n])
            self.callback(ts, te, prefix)


class TeeSink(ResultSink):
    """Fan one emission stream out to several sinks.

    The tee keeps its own counters (so ``result()`` works) and forwards
    every batch and the final ``finish`` to each target.
    """

    def __init__(self, *sinks: ResultSink) -> None:
        super().__init__()
        self.sinks = sinks
        self.collects = any(s.collects for s in sinks)

    def consume(self, ts, ends, prefix_lens, eids) -> None:
        for sink in self.sinks:
            sink.emit(ts, ends, prefix_lens, eids)

    def finish(self, completed: bool) -> None:
        super().finish(completed)
        for sink in self.sinks:
            sink.finish(completed)

    def result(self, algorithm, k, time_range) -> EnumerationResult:
        for sink in self.sinks:
            if sink.collects:
                return sink.result(algorithm, k, time_range)
        return super().result(algorithm, k, time_range)


class NDJSONSink(ResultSink):
    """Stream one JSON object per core to a text stream, as produced.

    Lines look like ``{"tti": [2, 5], "num_edges": 3, "edge_ids": [...]}``;
    ``edge_ids=False`` drops the id list (TTI + size only), which keeps
    each line O(1) regardless of core size.  Nothing is buffered — peak
    memory does not grow with the result set.
    """

    def __init__(self, stream: IO[str], *, edge_ids: bool = True) -> None:
        super().__init__()
        self.stream = stream
        self.edge_ids = edge_ids

    def consume(self, ts, ends, prefix_lens, eids) -> None:
        write = self.stream.write
        if not self.edge_ids:
            for te, n in zip(ends.tolist(), prefix_lens.tolist()):
                write(f'{{"tti": [{ts}, {te}], "num_edges": {n}}}\n')
            return
        run = eids.tolist()
        for te, n in zip(ends.tolist(), prefix_lens.tolist()):
            write(
                json.dumps(
                    {"tti": [ts, te], "num_edges": n, "edge_ids": run[:n]}
                )
                + "\n"
            )


class FlatArraySink(ResultSink):
    """Accumulate results columnar: flat int64 arrays, zero Python objects.

    Cores are *not* expanded: each per-``ts`` batch stores its shared
    edge run once, and every core records ``(ts, te, run_id, length)``
    — core ``i`` is ``runs[run_id[i]][:lengths[i]]``.  Total memory is
    ``O(sum of run lengths + num cores)``, typically far below the
    ``O(|R|)`` of materialised prefixes.  :meth:`arrays` exposes the
    columns; :meth:`iter_cores` re-expands lazily.
    """

    def __init__(self) -> None:
        super().__init__()
        self.runs: list[np.ndarray] = []
        self._ts_chunks: list[np.ndarray] = []
        self._te_chunks: list[np.ndarray] = []
        self._len_chunks: list[np.ndarray] = []
        self._run_chunks: list[np.ndarray] = []

    def consume(self, ts, ends, prefix_lens, eids) -> None:
        run_id = len(self.runs)
        self.runs.append(eids)
        n = len(ends)
        self._ts_chunks.append(np.full(n, ts, dtype=np.int64))
        self._te_chunks.append(np.asarray(ends, dtype=np.int64))
        self._len_chunks.append(np.asarray(prefix_lens, dtype=np.int64))
        self._run_chunks.append(np.full(n, run_id, dtype=np.int64))

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(tti_start, tti_end, length, run_id)`` flat int64 columns."""
        if not self._ts_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy(), empty.copy()
        return (
            np.concatenate(self._ts_chunks),
            np.concatenate(self._te_chunks),
            np.concatenate(self._len_chunks),
            np.concatenate(self._run_chunks),
        )

    def iter_cores(self):
        """Yield ``(ts, te, edge_id_array)`` per core (views, do not mutate)."""
        for ts_arr, te_arr, len_arr, run_arr in zip(
            self._ts_chunks, self._te_chunks, self._len_chunks, self._run_chunks
        ):
            for ts, te, n, run_id in zip(
                ts_arr.tolist(), te_arr.tolist(), len_arr.tolist(), run_arr.tolist()
            ):
                yield ts, te, self.runs[run_id][:n]


def make_sink(
    *, collect: bool, on_result: ResultCallback | None = None
) -> ResultSink:
    """The default sink for ``(collect, on_result)`` façade arguments."""
    base: ResultSink = MaterializingSink() if collect else CountSink()
    if on_result is None:
        return base
    if collect:
        return TeeSink(base, CallbackSink(on_result))
    return CallbackSink(on_result)
