"""A minimal blocking client for the serving daemon's protocol.

:class:`DaemonClient` is the reference consumer of
:mod:`repro.serve.protocol` — one TCP connection, synchronous calls,
frames demultiplexed by request id.  The test suite and the benchmark
harness drive the daemon through it; production clients in other
languages only need the protocol doc (``docs/DAEMON.md``), the wire
format is plain newline-delimited JSON.

Retries: ``retries=`` enables reconnect-and-retry with exponential
backoff and jitter (``backoff=`` seconds doubling per attempt, capped
at ``backoff_max=``) for connect failures, dropped connections and
``overloaded`` pushback.  Retry discipline follows idempotency:
queries, batches, pings, stats and flushes are safe to repeat
verbatim; an ``append`` is retried **only** when its frame carries a
dedupe token (the client generates one per call by default), because a
retried append without a token could be applied twice — once by the
crashed exchange, once by the retry.  With a token the daemon's
write-ahead log recognises the duplicate and answers the original
acknowledgement, byte-identical, even across a daemon restart.

>>> from repro.serve.client import DaemonClient   # doctest: +SKIP
>>> with DaemonClient("127.0.0.1", 7471, retries=3) as client:  # doctest: +SKIP
...     client.append([("a", "b", 7)])
...     client.flush()
...     cores, done = client.query(k=2, ts=1, te=9)
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid

from repro.errors import ReproError
from repro.serve.protocol import MAX_LINE_BYTES, encode_frame


class DaemonError(ReproError):
    """The daemon answered an error frame; mirrors its ``code``/``message``."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class DaemonConnectionError(DaemonError):
    """The transport failed mid-exchange (closed, reset, unreachable).

    Distinct from a daemon-sent error frame: the daemon said nothing —
    whether the request took effect is unknown, which is exactly the
    ambiguity the retry discipline (and append dedupe tokens) resolve.
    """

    def __init__(self, message: str):
        super().__init__("connection", message)


class DaemonClient:
    """One blocking protocol connection to a serving daemon.

    Parameters
    ----------
    retries:
        How many times a failed exchange is retried (0 = never).  Each
        retry reconnects if the transport dropped.
    backoff:
        First retry delay in seconds; doubles per attempt (exponential)
        with ±50% jitter, capped at ``backoff_max``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        retries: int = 0,
        backoff: float = 0.1,
        backoff_max: float = 2.0,
    ):
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        if backoff <= 0 or backoff_max < backoff:
            raise ReproError(
                f"need 0 < backoff <= backoff_max, got {backoff}/{backoff_max}"
            )
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0
        self._connect_retrying()

    # -- connection lifecycle --------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rb")

    def _connect_retrying(self) -> None:
        for attempt in range(self.retries + 1):
            try:
                self._connect()
                return
            except OSError:
                self._drop()
                if attempt == self.retries:
                    raise
            self._sleep(attempt)

    def _drop(self) -> None:
        """Tear the transport down; the next exchange reconnects."""
        try:
            if self._file is not None:
                self._file.close()
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._file = None
        self._sock = None

    def _sleep(self, attempt: int) -> None:
        delay = min(self.backoff_max, self.backoff * (2 ** attempt))
        # Full ±50% jitter: concurrent clients that failed together
        # should not retry in lockstep.
        time.sleep(delay * (0.5 + random.random()))

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw frame I/O ---------------------------------------------------

    def send(self, frame: dict) -> None:
        if self._sock is None:
            self._connect()
        try:
            self._sock.sendall(encode_frame(frame))
        except OSError as exc:
            raise DaemonConnectionError(f"send failed: {exc}") from exc

    def recv(self) -> dict:
        """The next response frame, whatever request it belongs to.

        Response frames are not size-bounded server-side (a single
        core's ``edge_ids`` list can push a frame past the request-line
        limit), so the line is reassembled chunk by chunk until its
        terminating newline rather than trusting one bounded
        ``readline`` not to truncate mid-frame.
        """
        try:
            line = self._file.readline(MAX_LINE_BYTES + 2)
            if not line:
                raise DaemonConnectionError("connection closed by daemon")
            while not line.endswith(b"\n"):
                chunk = self._file.readline(MAX_LINE_BYTES + 2)
                if not chunk:
                    raise DaemonConnectionError(
                        "connection closed mid-frame by daemon"
                    )
                line += chunk
        except OSError as exc:
            raise DaemonConnectionError(f"recv failed: {exc}") from exc
        return json.loads(line)

    def _exchange(self, frame: dict, rid) -> dict:
        self.send(frame)
        response = self.recv()
        if response.get("id") != rid and response.get("id") is not None:
            raise DaemonError(
                "internal",
                f"response for {response.get('id')!r}, expected {rid!r}",
            )
        return self._raise_on_error(response)

    def _retrying(self, attempt_fn, *, idempotent: bool):
        """Run one exchange with the retry/backoff/jitter policy.

        Transport failures reconnect before retrying; ``overloaded``
        frames back off on the live connection.  ``idempotent=False``
        disables retry after a transport failure mid-exchange — the
        request may already have been applied — but still retries
        connect-time failures (nothing was sent yet) and ``overloaded``
        (the daemon explicitly did not accept the work).
        """
        for attempt in range(self.retries + 1):
            sent = False
            try:
                if self._sock is None:
                    self._connect()
                sent = True
                return attempt_fn()
            except (DaemonConnectionError, OSError) as exc:
                self._drop()
                if attempt == self.retries or (sent and not idempotent):
                    raise DaemonConnectionError(str(exc)) from exc
            except DaemonError as exc:
                if exc.code != "overloaded" or attempt == self.retries:
                    raise
            self._sleep(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def request(self, frame: dict, *, idempotent: bool = True) -> dict:
        """Send one frame, return its first response frame (id-checked)."""
        rid = frame.setdefault("id", self._take_id())
        return self._retrying(
            lambda: self._exchange(frame, rid), idempotent=idempotent
        )

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @staticmethod
    def _raise_on_error(frame: dict) -> dict:
        if frame.get("ok") is False:
            error = frame.get("error") or {}
            raise DaemonError(
                error.get("code", "internal"), error.get("message", "")
            )
        return frame

    # -- verbs -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> dict:
        """Ask the daemon to drain; returns the acknowledgement frame.

        Never retried: a dropped connection right after a shutdown is
        the expected shape of success.
        """
        rid = self._take_id()
        return self._exchange({"op": "shutdown", "id": rid}, rid)

    def append(
        self,
        edges: list[tuple],
        *,
        graph: str | None = None,
        dedupe: str | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Durably append edge events; returns the acknowledgement frame.

        The returned frame's ``lsn``/``appended`` are final only
        because the daemon fsynced the write-ahead log before
        answering.  ``dedupe`` defaults to a fresh random token, which
        is what makes the call safely retryable: if the connection
        dies after the daemon applied the append but before the
        acknowledgement arrived, the retry presents the same token and
        receives the original answer instead of appending twice.  Pass
        an explicit token to make *application-level* retries (a whole
        job re-run) idempotent too.
        """
        token = dedupe if dedupe is not None else uuid.uuid4().hex
        frame: dict = {
            "op": "append",
            "edges": [list(triple) for triple in edges],
            "dedupe": token,
        }
        if graph is not None:
            frame["graph"] = graph
        if timeout is not None:
            frame["timeout"] = timeout
        # Idempotent precisely because the frame carries a dedupe token;
        # request() would double-apply without one.
        return self.request(frame, idempotent=True)

    def flush(
        self, *, graph: str | None = None, timeout: float | None = None
    ) -> dict:
        """Fold appended events into a queryable snapshot; the ack frame."""
        frame: dict = {"op": "flush"}
        if graph is not None:
            frame["graph"] = graph
        if timeout is not None:
            frame["timeout"] = timeout
        return self.request(frame)

    def query(
        self,
        *,
        k: int,
        ts: int,
        te: int,
        graph: str | None = None,
        timeout: float | None = None,
        edge_ids: bool = True,
    ) -> tuple[list[dict], dict]:
        """Run one streamed query; ``(cores, terminal_frame)``.

        ``cores`` are the streamed ``core`` payloads in enumeration
        order — each exactly the object an in-process NDJSON sink
        would have written.  A retry rediscards any partially streamed
        cores and reruns the query from scratch (queries are
        read-only, so a wholesale rerun is safe).
        """
        frame: dict = {"op": "query", "k": k, "ts": ts, "te": te}
        if graph is not None:
            frame["graph"] = graph
        if timeout is not None:
            frame["timeout"] = timeout
        if not edge_ids:
            frame["edge_ids"] = False
        frame["id"] = self._take_id()

        def attempt() -> tuple[list[dict], dict]:
            self.send(frame)
            cores: list[dict] = []
            while True:
                response = self.recv()
                if response.get("id") != frame["id"]:
                    raise DaemonError(
                        "internal", f"interleaved response {response!r}"
                    )
                if "core" in response:
                    cores.append(response["core"])
                    continue
                return cores, self._raise_on_error(response)

        return self._retrying(attempt, idempotent=True)

    def batch(
        self,
        ranges: list[tuple[int, int]],
        *,
        k: int,
        graph: str | None = None,
        timeout: float | None = None,
    ) -> list[dict]:
        """Run a count-only batch; one answer dict per range, in order."""
        frame: dict = {
            "op": "batch",
            "k": k,
            "ranges": [list(pair) for pair in ranges],
        }
        if graph is not None:
            frame["graph"] = graph
        if timeout is not None:
            frame["timeout"] = timeout
        return self.request(frame)["answers"]
