"""A minimal blocking client for the serving daemon's protocol.

:class:`DaemonClient` is the reference consumer of
:mod:`repro.serve.protocol` — one TCP connection, synchronous calls,
frames demultiplexed by request id.  The test suite and the benchmark
harness drive the daemon through it; production clients in other
languages only need the protocol doc (``docs/DAEMON.md``), the wire
format is plain newline-delimited JSON.

>>> from repro.serve.client import DaemonClient   # doctest: +SKIP
>>> with DaemonClient("127.0.0.1", 7471) as client:  # doctest: +SKIP
...     client.ping()
...     cores, done = client.query(k=2, ts=1, te=9)
"""

from __future__ import annotations

import json
import socket

from repro.errors import ReproError
from repro.serve.protocol import MAX_LINE_BYTES, encode_frame


class DaemonError(ReproError):
    """The daemon answered an error frame; mirrors its ``code``/``message``."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class DaemonClient:
    """One blocking protocol connection to a serving daemon."""

    def __init__(self, host: str, port: int, *, timeout: float | None = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw frame I/O ---------------------------------------------------

    def send(self, frame: dict) -> None:
        self._sock.sendall(encode_frame(frame))

    def recv(self) -> dict:
        """The next response frame, whatever request it belongs to.

        Response frames are not size-bounded server-side (a single
        core's ``edge_ids`` list can push a frame past the request-line
        limit), so the line is reassembled chunk by chunk until its
        terminating newline rather than trusting one bounded
        ``readline`` not to truncate mid-frame.
        """
        line = self._file.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise DaemonError("internal", "connection closed by daemon")
        while not line.endswith(b"\n"):
            chunk = self._file.readline(MAX_LINE_BYTES + 2)
            if not chunk:
                raise DaemonError(
                    "internal", "connection closed mid-frame by daemon"
                )
            line += chunk
        return json.loads(line)

    def request(self, frame: dict) -> dict:
        """Send one frame, return its first response frame (id-checked)."""
        rid = frame.setdefault("id", self._take_id())
        self.send(frame)
        response = self.recv()
        if response.get("id") != rid and response.get("id") is not None:
            raise DaemonError(
                "internal",
                f"response for {response.get('id')!r}, expected {rid!r}",
            )
        return self._raise_on_error(response)

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @staticmethod
    def _raise_on_error(frame: dict) -> dict:
        if frame.get("ok") is False:
            error = frame.get("error") or {}
            raise DaemonError(
                error.get("code", "internal"), error.get("message", "")
            )
        return frame

    # -- verbs -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> dict:
        """Ask the daemon to drain; returns the acknowledgement frame."""
        return self.request({"op": "shutdown"})

    def query(
        self,
        *,
        k: int,
        ts: int,
        te: int,
        graph: str | None = None,
        timeout: float | None = None,
        edge_ids: bool = True,
    ) -> tuple[list[dict], dict]:
        """Run one streamed query; ``(cores, terminal_frame)``.

        ``cores`` are the streamed ``core`` payloads in enumeration
        order — each exactly the object an in-process NDJSON sink
        would have written.
        """
        frame: dict = {"op": "query", "k": k, "ts": ts, "te": te}
        if graph is not None:
            frame["graph"] = graph
        if timeout is not None:
            frame["timeout"] = timeout
        if not edge_ids:
            frame["edge_ids"] = False
        rid = self._take_id()
        frame["id"] = rid
        self.send(frame)
        cores: list[dict] = []
        while True:
            response = self.recv()
            if response.get("id") != rid:
                raise DaemonError(
                    "internal", f"interleaved response {response!r}"
                )
            if "core" in response:
                cores.append(response["core"])
                continue
            return cores, self._raise_on_error(response)

    def batch(
        self,
        ranges: list[tuple[int, int]],
        *,
        k: int,
        graph: str | None = None,
        timeout: float | None = None,
    ) -> list[dict]:
        """Run a count-only batch; one answer dict per range, in order."""
        frame: dict = {
            "op": "batch",
            "k": k,
            "ranges": [list(pair) for pair in ranges],
        }
        if graph is not None:
            frame["graph"] = graph
        if timeout is not None:
            frame["timeout"] = timeout
        return self.request(frame)["answers"]
