"""The query planner — normalise serving traffic into a `QueryPlan`.

Every serving entry point (single queries through
:class:`~repro.core.query.TimeRangeCoreQuery`, the fixed-``k`` and
mixed batch runners, :class:`~repro.core.maintenance.StreamingCoreService`,
the CLI) describes its work as :class:`QueryRequest` values and hands
them to :func:`plan_queries`.  Planning is pure — no index is built,
no window enumerated — and does three things:

1. **Group** requests by ``(graph, k)``: requests of one group share a
   skyline, so their window prep is one vectorised cut.
2. **Dedupe and merge**: identical ranges collapse onto one covering
   window; contained ranges ride along for free; overlapping ranges
   are merged into one covering window when the overlap is worth it
   (``min_overlap`` — merging windows that barely touch would pay for
   boundary-straddling cores nobody asked for).  Each covering window
   is enumerated **once** by the executor and sliced per request: a
   core of the covering walk belongs to request ``[ts, te]`` exactly
   when its TTI is contained in ``[ts, te]`` (Definition 3 puts cores
   and TTIs in bijection, so sub-range answers are TTI filters — the
   same fact that lets one full-span index serve arbitrary ranges).
3. **Pick the engine** per group: ``index`` (cut the shared
   :class:`~repro.core.index.CoreIndex` skyline) when one is already
   cached, pinned, or the group's traffic warrants building one;
   ``direct`` (run Algorithm 2 over each covering window) for one-shot
   traffic that should not pay a full-span build.

The resulting :class:`QueryPlan` is inert data; hand it to
:func:`repro.serve.executor.execute_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.metrics import get_registry, timing_enabled
from repro.obs.timing import now
from repro.obs.trace import NULL_TRACE, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.index import CoreIndex, CoreIndexRegistry
    from repro.serve.sinks import ResultSink

#: Engine names a plan group can carry.
PLAN_ENGINES = ("auto", "index", "direct")

# Planner instruments on the process metrics registry.  The counters
# mirror the per-plan ``stats`` dict cumulatively; the histogram times
# whole planning passes (skipped when timing is disabled).
_PLAN_SECONDS = get_registry().histogram(
    "repro_plan_seconds", "Query-planning latency per batch"
)
_PLAN_REQUESTS = get_registry().counter(
    "repro_plan_requests_total", "Requests planned"
)
_PLAN_WINDOWS = get_registry().counter(
    "repro_plan_windows_total", "Covering windows emitted by the planner"
)
_PLAN_DEDUPED = get_registry().counter(
    "repro_plan_deduped_total", "Requests answered by an identical range"
)
_PLAN_MERGED = get_registry().counter(
    "repro_plan_merged_total", "Distinct ranges folded into a shared window"
)

#: Default minimum overlap fraction (of the smaller window) for merging
#: two overlapping-but-not-nested ranges into one covering window.
DEFAULT_MIN_OVERLAP = 0.5


@dataclass(frozen=True)
class QueryRequest:
    """One range query: ``(graph, k, [ts, te])`` plus its delivery sink.

    ``sink`` is optional — the executor creates a counting or
    materialising sink from its ``collect`` default when none is given.
    Validated eagerly so a malformed request fails at plan time, not
    midway through executing a batch.
    """

    graph: TemporalGraph
    k: int
    ts: int
    te: int
    sink: "ResultSink | None" = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        self.graph.check_window(self.ts, self.te)

    @property
    def time_range(self) -> tuple[int, int]:
        return (self.ts, self.te)


@dataclass
class CoveringWindow:
    """One window the executor enumerates, serving one or more requests.

    ``requests`` are indices into the plan's request list; every
    request range is contained in ``[ts, te]`` and receives the slice
    of the walk's emissions whose TTIs its range contains.
    """

    ts: int
    te: int
    requests: list[int]

    @property
    def is_shared(self) -> bool:
        return len(self.requests) > 1


@dataclass
class PlanGroup:
    """All covering windows of one ``(graph, k)``, plus the engine choice.

    ``index`` may carry a pre-resolved :class:`CoreIndex` (pinned by
    the caller — e.g. ``CoreIndex.query`` planning for itself); the
    executor then uses it directly instead of consulting a registry.
    """

    graph: TemporalGraph
    k: int
    engine: str
    windows: list[CoveringWindow] = field(default_factory=list)
    index: "CoreIndex | None" = None


@dataclass
class QueryPlan:
    """The executable shape of a batch of requests.

    ``stats`` records what planning saved: ``deduped`` identical
    ranges, ``merged`` ranges answered from a shared covering window,
    and the final window count versus the request count.  ``trace``
    carries the per-query span tree the executor should continue
    recording into (:data:`~repro.obs.trace.NULL_TRACE` when tracing
    is off).
    """

    requests: list[QueryRequest]
    groups: list[PlanGroup]
    stats: dict[str, int] = field(default_factory=dict)
    trace: Trace = NULL_TRACE

    @property
    def num_windows(self) -> int:
        return sum(len(group.windows) for group in self.groups)


def _merge_ranges(
    ranges: list[tuple[tuple[int, int], list[int]]], min_overlap: float
) -> list[CoveringWindow]:
    """Merge deduped ranges (sorted by ``(ts, -te)``) into covering windows.

    Containment always merges (the contained range adds no new work);
    plain overlap merges when it spans at least ``min_overlap`` of the
    smaller range.
    """
    windows: list[CoveringWindow] = []
    for (ts, te), request_ids in ranges:
        if windows:
            current = windows[-1]
            if te <= current.te:  # contained (ranges sorted by ts)
                current.requests.extend(request_ids)
                continue
            overlap = current.te - ts + 1
            smaller = min(current.te - current.ts, te - ts) + 1
            if overlap > 0 and overlap >= min_overlap * smaller:
                current.te = te
                current.requests.extend(request_ids)
                continue
        windows.append(CoveringWindow(ts, te, list(request_ids)))
    return windows


def plan_for_index(
    index: "CoreIndex",
    ranges: list[tuple[int, int]],
    *,
    sinks: "list[ResultSink | None] | None" = None,
    merge_overlaps: bool = True,
    min_overlap: float = DEFAULT_MIN_OVERLAP,
    trace: Trace | None = None,
) -> QueryPlan:
    """Plan a batch of ranges pinned to an already-resolved index.

    The shape behind :meth:`CoreIndex.query_batch
    <repro.core.index.CoreIndex.query_batch>`: the usual dedup/merge
    planning, with every group carrying ``index`` so the executor never
    consults a registry.  ``sinks`` optionally supplies one delivery
    sink per range (parallel to ``ranges``).
    """
    if sinks is not None and len(sinks) != len(ranges):
        raise InvalidParameterError(
            f"sinks has {len(sinks)} entries for {len(ranges)} ranges"
        )
    requests = [
        QueryRequest(
            index.graph,
            index.k,
            ts,
            te,
            sink=sinks[position] if sinks is not None else None,
        )
        for position, (ts, te) in enumerate(ranges)
    ]
    plan = plan_queries(
        requests,
        engine="index",
        merge_overlaps=merge_overlaps,
        min_overlap=min_overlap,
        trace=trace,
    )
    for group in plan.groups:
        group.index = index
    return plan


def plan_queries(
    requests: "list[QueryRequest]",
    *,
    engine: str = "auto",
    registry: "CoreIndexRegistry | None" = None,
    merge_overlaps: bool = True,
    min_overlap: float = DEFAULT_MIN_OVERLAP,
    trace: Trace | None = None,
) -> QueryPlan:
    """Normalise ``requests`` into a :class:`QueryPlan`.

    ``engine`` forces ``"index"`` or ``"direct"`` for every group;
    ``"auto"`` picks per group: ``index`` when ``registry`` already
    caches the ``(graph, k)`` or the group holds more than one request
    or covering window (shared prep amortises the build — and with an
    attached store the build is usually a disk load), ``direct`` for a
    lone one-shot request, which pays Algorithm 2 over just its window
    instead of a full-span index build.  The registry is only *peeked*
    at plan time, never populated.

    ``merge_overlaps=False`` limits sharing to identical ranges
    (every distinct range gets its own covering window).

    ``trace``, when given, records the pass as a ``plan`` span and is
    carried on the returned plan for the executor to continue;
    planning also feeds the process registry's ``repro_plan_*``
    instruments either way.
    """
    if engine not in PLAN_ENGINES:
        raise InvalidParameterError(
            f"unknown plan engine {engine!r}; choose one of {PLAN_ENGINES}"
        )
    if not 0.0 <= min_overlap <= 1.0:
        raise InvalidParameterError(
            f"min_overlap must be within [0, 1], got {min_overlap}"
        )
    trace = trace if trace is not None else NULL_TRACE
    timed = timing_enabled()
    started = now() if timed else 0.0
    with trace.span("plan", requests=len(requests), engine=engine) as span:
        plan = _plan(requests, engine, registry, merge_overlaps, min_overlap)
        span.set(
            windows=plan.stats["windows"],
            deduped=plan.stats["deduped"],
            merged=plan.stats["merged"],
        )
    plan.trace = trace
    _PLAN_REQUESTS.inc(plan.stats["requests"])
    _PLAN_WINDOWS.inc(plan.stats["windows"])
    _PLAN_DEDUPED.inc(plan.stats["deduped"])
    _PLAN_MERGED.inc(plan.stats["merged"])
    if timed:
        _PLAN_SECONDS.observe(now() - started)
    return plan


def _plan(
    requests: "list[QueryRequest]",
    engine: str,
    registry: "CoreIndexRegistry | None",
    merge_overlaps: bool,
    min_overlap: float,
) -> QueryPlan:
    # Group by (graph identity, k), preserving first-seen order.
    grouped: dict[tuple[int, int], list[int]] = {}
    graphs: dict[int, TemporalGraph] = {}
    for position, request in enumerate(requests):
        graphs[id(request.graph)] = request.graph
        grouped.setdefault((id(request.graph), request.k), []).append(position)

    deduped = 0
    merged = 0
    groups: list[PlanGroup] = []
    for (gid, k), positions in grouped.items():
        graph = graphs[gid]
        # Dedupe identical ranges.
        by_range: dict[tuple[int, int], list[int]] = {}
        for position in positions:
            request = requests[position]
            by_range.setdefault(request.time_range, []).append(position)
        deduped += len(positions) - len(by_range)
        ordered = sorted(by_range.items(), key=lambda item: (item[0][0], -item[0][1]))
        if merge_overlaps:
            windows = _merge_ranges(ordered, min_overlap)
        else:
            windows = [
                CoveringWindow(ts, te, list(ids)) for (ts, te), ids in ordered
            ]
        merged += len(by_range) - len(windows)

        chosen = engine
        if chosen == "auto":
            cached = registry is not None and registry.peek(graph, k) is not None
            chosen = (
                "index"
                if cached or len(positions) > 1 or len(windows) > 1
                else "direct"
            )
        groups.append(PlanGroup(graph, k, chosen, windows))

    return QueryPlan(
        list(requests),
        groups,
        stats={
            "requests": len(requests),
            "groups": len(groups),
            "windows": sum(len(g.windows) for g in groups),
            "deduped": deduped,
            "merged": merged,
        },
    )
