"""The columnar enumeration core — Algorithm 5 without linked lists.

The seed enumerator (kept as the oracle in
:mod:`repro.core.enumerate_ref`) maintains ``L_ts`` as a doubly linked
list of per-window Python objects and walks it cell by cell.  This
module replaces both with array operations over the flat
``(eid, start, end, active)`` window slice the skyline hands over:

* the *alive set* ``L_ts`` is held as three parallel **contiguous**
  int64 arrays ``(end, start, eid)``, kept sorted by end time
  (contiguity matters: every step streams these arrays, and a strided
  layout costs a measured ~4x);
* moving between start times is an array **cut** (drop the entries
  whose start just expired — one boolean compress) and an array
  **merge** (splice the newly activated windows in at their
  ``searchsorted`` positions — the vectorised form of Algorithm 5's
  roving-cursor insertion);
* **AS-Output** (Algorithm 4) becomes a shifted comparison: the cores
  reported at ``ts`` are the end-group boundaries of the alive suffix
  at or after the first entry with start time ``ts``, and each is
  described to the sink as ``(end, prefix length)`` into the shared
  end-sorted edge run — no per-core accumulation loop.

Only start times where some window starts are visited (Lemma 4: no
core starts anywhere else), and between two visited start times every
activation and expiry is applied in one batch — windows that would
have been spliced in and dropped again without ever being scanned are
never touched, preserving the ``O(|L \\ L'|)`` update bound in
vectorised form.

Emission order, duplicate-freedom and the reported TTIs are exactly
the oracle's; only the intra-core edge order may differ within groups
of equal end times (the emitted prefix at a group boundary contains
the whole group either way).  The property suite asserts per-core
TTI + edge-set identity against the oracle.
"""

from __future__ import annotations

import numpy as np

from repro.serve.sinks import ResultSink
from repro.obs.timing import Deadline

_EMPTY = np.empty(0, dtype=np.int64)


def run_columnar_walk(
    ts_lo: int,
    ts_hi: int,
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    sink: ResultSink,
    *,
    deadline: Deadline | None = None,
) -> bool:
    """Enumerate the cores of ``[ts_lo, ts_hi]`` into ``sink``.

    ``arrays`` is the columnar ``(eid, start, end, active)`` window
    slice for the range (:meth:`EdgeCoreSkyline.active_window_arrays
    <repro.core.windows.EdgeCoreSkyline.active_window_arrays>`).
    Returns ``True`` when the walk ran to completion, ``False`` on a
    deadline abort (the sink then holds the results of every start
    time finished before the abort).  The caller is responsible for
    calling ``sink.finish`` with the returned flag.
    """
    eids, starts, ends, actives = arrays
    if not len(eids):
        return True
    # Activation order drives the batched splice-in; the unique start
    # times drive the visit schedule (Lemma 4).
    by_active = np.argsort(actives, kind="stable")
    actives_sorted = actives[by_active]
    emit_times = np.unique(starts)

    alive_ends = _EMPTY
    alive_starts = _EMPTY
    alive_eids = _EMPTY
    act_pos = 0
    prev_t: int | None = None
    for t in emit_times.tolist():
        if deadline is not None and deadline.expired():
            return False
        # Cut: windows whose start time was the previous visited start
        # expired the step after it (no other start lies in between).
        if prev_t is not None:
            keep = alive_starts != prev_t
            if not keep.all():
                alive_ends = alive_ends[keep]
                alive_starts = alive_starts[keep]
                alive_eids = alive_eids[keep]
        # Merge: windows with activation time in (prev_t, t], pre-sorted
        # by end, spliced at their searchsorted positions (stable: new
        # entries land before existing equal-end entries, like the
        # oracle's roving cursor).
        hi = int(np.searchsorted(actives_sorted, t, side="right"))
        if hi > act_pos:
            incoming = by_active[act_pos:hi]
            act_pos = hi
            incoming = incoming[np.argsort(ends[incoming], kind="stable")]
            incoming_ends = ends[incoming]
            if len(alive_ends):
                positions = np.searchsorted(
                    alive_ends, incoming_ends, side="left"
                )
                alive_ends = np.insert(alive_ends, positions, incoming_ends)
                alive_starts = np.insert(
                    alive_starts, positions, starts[incoming]
                )
                alive_eids = np.insert(alive_eids, positions, eids[incoming])
            else:
                alive_ends = incoming_ends
                alive_starts = starts[incoming]
                alive_eids = eids[incoming]
        # AS-Output: the first entry starting exactly at t flips the
        # valid flag (Lemma 6); every end-group boundary from there on
        # reports one core as a prefix of the shared end-sorted run.
        # t is some window's start time and that window is alive (its
        # activation time never exceeds its start time), so a True
        # exists for argmax to find.
        p0 = int(np.argmax(alive_starts == t))
        suffix = alive_ends[p0:]
        boundary = np.empty(len(suffix), dtype=bool)
        boundary[-1] = True
        np.not_equal(suffix[1:], suffix[:-1], out=boundary[:-1])
        emit_pos = np.flatnonzero(boundary) + p0
        sink.emit(t, alive_ends[emit_pos], emit_pos + 1, alive_eids)
        prev_t = t
    return True
