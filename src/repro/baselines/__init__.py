"""Competitor algorithms and reference oracles."""

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.baselines.historical import (
    PHCIndex,
    historical_core_edge_ids,
    historical_core_vertices,
)
from repro.baselines.otcd import enumerate_otcd
from repro.baselines.pruning import PruneRegistry

__all__ = [
    "PHCIndex",
    "PruneRegistry",
    "enumerate_bruteforce",
    "enumerate_otcd",
    "historical_core_edge_ids",
    "historical_core_vertices",
]
