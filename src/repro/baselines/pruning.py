"""TTI-based pruning bookkeeping for OTCD (PoR / PoU / PoL).

Yang et al. [12] prune time windows that cannot contain a new temporal
k-core.  Given a core computed at window ``[a, b]`` whose TTI is
``[ts', te']``:

* **PoR** (right): for the same start ``a``, every end in ``[te', b]``
  yields the same core — handled *locally* by the OTCD scan, which jumps
  the end time straight to ``te' - 1``.
* **PoU** (underside, when ``ts' > a``): starts in ``(a, ts']`` with ends
  in ``[te', b]`` still yield exactly this core.
* **PoL** (left, when additionally ``te' < b``): for any start past
  ``ts'``, ends in ``[te' + 1, b]`` duplicate the core found at end
  ``te'``.

PoU and PoL are *deferred* rules: they concern future start times, so the
registry stores them as ``(start_lo, start_hi, end_lo, end_hi)`` boxes and
materialises, per start time, the merged set of pruned end intervals.
"""

from __future__ import annotations

from repro.utils.order import merge_intervals


class PruneRegistry:
    """Accumulates pruning boxes and answers per-start interval queries."""

    __slots__ = ("span", "_rules", "num_rules_applied")

    def __init__(self, span: tuple[int, int]):
        self.span = span
        self._rules: list[tuple[int, int, int, int]] = []
        self.num_rules_applied = 0

    def register_from_tti(
        self, window: tuple[int, int], tti: tuple[int, int]
    ) -> None:
        """Register PoU/PoL boxes derived from a core output.

        ``window`` is the probe window ``[a, b]`` the core was computed
        at; ``tti`` is the core's tightest time interval ``[ts', te']``.
        """
        (a, b), (ts_p, te_p) = window, tti
        span_lo, span_hi = self.span
        if not (span_lo <= a <= ts_p and te_p <= b <= span_hi):
            raise ValueError(f"TTI {tti} not nested in window {window}")
        if ts_p > a:
            self._rules.append((a + 1, ts_p, te_p, b))
            self.num_rules_applied += 1
            if te_p < b:
                self._rules.append((ts_p + 1, span_hi, te_p + 1, b))
                self.num_rules_applied += 1

    def pruned_ends_for(self, start: int) -> list[tuple[int, int]]:
        """Merged, sorted end-time intervals pruned at this start time.

        Intervals are clamped to ``[start, span_hi]`` (ends before the
        start are meaningless) and rules that expired are dropped from
        the registry to keep later queries cheap.
        """
        span_hi = self.span[1]
        live: list[tuple[int, int, int, int]] = []
        applicable: list[tuple[int, int]] = []
        for rule in self._rules:
            a_lo, a_hi, e_lo, e_hi = rule
            if a_hi < start:
                continue  # Expired: start times only grow.
            live.append(rule)
            if a_lo <= start:
                lo = max(e_lo, start)
                hi = min(e_hi, span_hi)
                if lo <= hi:
                    applicable.append((lo, hi))
        self._rules = live
        return merge_intervals(applicable)

    @property
    def num_rules_live(self) -> int:
        return len(self._rules)
