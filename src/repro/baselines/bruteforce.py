"""Brute-force temporal k-core enumeration — the ground-truth oracle.

For every window ``[ts, te]`` inside the query range, project the graph,
peel the k-core (Definition 2) and record the edge set.  Distinct edge
sets are the answer.  Complexity is ``O(tmax^2 * m)`` — unusable beyond
toy sizes, but its simplicity makes it the referee every other algorithm
is tested against.
"""

from __future__ import annotations

from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import snapshot_k_core
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.timing import Deadline


def enumerate_bruteforce(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    collect: bool = True,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Enumerate all distinct temporal k-cores by checking every window."""
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    result = EnumerationResult("bruteforce", k, (ts_lo, ts_hi))
    if collect:
        result.cores = []
    seen: set[frozenset[int]] = set()
    for start in range(ts_lo, ts_hi + 1):
        if deadline is not None and deadline.expired():
            result.completed = False
            break
        for end in range(start, ts_hi + 1):
            snapshot = Snapshot.from_graph(graph, start, end)
            members = snapshot_k_core(snapshot, k)
            if not members:
                continue
            edge_ids = snapshot.induced_temporal_edge_ids(members)
            identity = frozenset(edge_ids)
            if identity in seen:
                continue
            seen.add(identity)
            times = [graph.edges[eid].t for eid in edge_ids]
            result.record(min(times), max(times), edge_ids, collect)
    return result
