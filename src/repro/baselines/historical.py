"""Historical k-core queries — the query side of Yu et al. [13].

The time-range problem generalises the *historical* k-core query: given a
single window ``[ts, te]``, return the k-core of ``G[ts, te]``.  With the
VCT index this is answered without touching the graph topology: a vertex
``u`` belongs to the core iff ``CT_ts(u) <= te`` (Definition 4).

:class:`PHCIndex` extends the single-k VCT to all core levels
``1..kmax`` — the full "PHC" shape of [13] — so that arbitrary ``(k, ts,
te)`` historical queries are index-only.  The paper uses only the fixed-k
slice, but the multi-k index is a natural library feature and exercises
the same machinery.
"""

from __future__ import annotations

from repro.core.coretime import VertexCoreTimeIndex, compute_vertex_core_times
from repro.errors import InvalidParameterError
from repro.graph.static_core import core_decomposition
from repro.graph.temporal_graph import TemporalGraph


def historical_core_vertices(
    graph: TemporalGraph, vct: VertexCoreTimeIndex, ts: int, te: int
) -> set[int]:
    """Vertices of the k-core of ``G[ts, te]`` answered from the index."""
    graph.check_window(ts, te)
    return {
        u
        for u in range(graph.num_vertices)
        if vct.in_core(u, ts, te)
    }


def historical_core_edge_ids(
    graph: TemporalGraph, vct: VertexCoreTimeIndex, ts: int, te: int
) -> list[int]:
    """Temporal edge ids of the k-core of ``G[ts, te]``.

    An edge belongs to the core iff both endpoints do and its timestamp
    falls inside the window (the fact behind Lemma 1).
    """
    members = historical_core_vertices(graph, vct, ts, te)
    if not members:
        return []
    return [
        eid
        for eid in graph.window_edge_ids(ts, te)
        if graph.edges[eid].u in members and graph.edges[eid].v in members
    ]


class PHCIndex:
    """Per-k VCT indexes for every core level of the graph.

    Building costs one :func:`compute_vertex_core_times` run per k in
    ``1..kmax``; queries are then index-only for any k.
    """

    def __init__(self, graph: TemporalGraph, *, max_k: int | None = None):
        self.graph = graph
        if max_k is None:
            adjacency: dict[int, set[int]] = {}
            for u, v, _ in graph.edges:
                adjacency.setdefault(u, set()).add(v)
                adjacency.setdefault(v, set()).add(u)
            cores = core_decomposition(adjacency)
            max_k = max(cores.values(), default=0)
        if max_k < 1:
            raise InvalidParameterError("graph has no core level >= 1")
        self.max_k = max_k
        self._levels: dict[int, VertexCoreTimeIndex] = {}

    def level(self, k: int) -> VertexCoreTimeIndex:
        """The VCT index for core level ``k`` (built lazily, cached)."""
        if k < 1 or k > self.max_k:
            raise InvalidParameterError(f"k={k} outside 1..{self.max_k}")
        index = self._levels.get(k)
        if index is None:
            index = compute_vertex_core_times(self.graph, k)
            self._levels[k] = index
        return index

    def build_all(self) -> None:
        """Eagerly build every level (the offline PHC construction)."""
        for k in range(1, self.max_k + 1):
            self.level(k)

    def query(self, k: int, ts: int, te: int) -> set[int]:
        """Historical k-core members of ``G[ts, te]``."""
        return historical_core_vertices(self.graph, self.level(k), ts, te)

    def size(self) -> int:
        """Total entries across all built levels."""
        return sum(index.size() for index in self._levels.values())
