"""OTCD — the state-of-the-art competitor (Algorithm 1, Yang et al. [12]).

OTCD enumerates temporal k-cores *decrementally*: anchor the start time,
sweep the end time from wide to narrow, and maintain the current core
under edge deletions with cascading evictions.  Moving to the next start
time truncates the previous widest core.  Three TTI-based pruning rules
(PoR / PoU / PoL, see :mod:`repro.baselines.pruning`) skip windows that
cannot reveal a new core.

Even with pruning, the scan touches ``O(tmax^2)`` windows in the worst
case — the bottleneck the paper's Enum removes.  This re-implementation
is validated against the brute-force oracle and serves as the baseline
for Figures 6–8 and 12.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.pruning import PruneRegistry
from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.static_core import peel_k_core
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.order import interval_contains
from repro.obs.timing import Deadline


class _CoreState:
    """The current temporal k-core subgraph under two-sided deletions.

    Maintains, restricted to the current core members:

    * ``adj`` — static adjacency sets;
    * ``pair_eids`` — per static pair, the deque of live temporal edge
      ids in ascending time order (the outer loop pops from the left as
      the start grows, the inner loop pops from the right as the end
      shrinks);
    * ``live`` — the set of live temporal edge ids;
    * ``time_count`` — live edges per timestamp, with lazily advancing
      min/max cursors giving the TTI in amortised constant time.
    """

    __slots__ = ("graph", "k", "adj", "pair_eids", "live", "time_count", "_lo", "_hi")

    def __init__(self, graph: TemporalGraph, k: int):
        self.graph = graph
        self.k = k
        self.adj: dict[int, set[int]] = {}
        self.pair_eids: dict[tuple[int, int], deque[int]] = {}
        self.live: set[int] = set()
        self.time_count: list[int] = [0] * (graph.tmax + 2)
        self._lo = 1
        self._hi = graph.tmax

    @classmethod
    def initial(cls, graph: TemporalGraph, k: int, ts: int, te: int) -> "_CoreState":
        """Peel the k-core of ``G[ts, te]`` and wrap it as a state."""
        pair_eids: dict[tuple[int, int], list[int]] = {}
        for eid in graph.window_edge_ids(ts, te):
            u, v, _ = graph.edges[eid]
            pair_eids.setdefault((u, v), []).append(eid)
        adjacency: dict[int, set[int]] = {}
        for u, v in pair_eids:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        members = peel_k_core(adjacency, k)

        state = cls(graph, k)
        state._lo, state._hi = ts, te
        for (u, v), eids in pair_eids.items():
            if u in members and v in members:
                state.pair_eids[(u, v)] = deque(eids)
                state.adj.setdefault(u, set()).add(v)
                state.adj.setdefault(v, set()).add(u)
                for eid in eids:
                    state.live.add(eid)
                    state.time_count[graph.edges[eid].t] += 1
        return state

    def copy(self) -> "_CoreState":
        clone = _CoreState(self.graph, self.k)
        clone.adj = {u: set(neigh) for u, neigh in self.adj.items()}
        clone.pair_eids = {pair: deque(eids) for pair, eids in self.pair_eids.items()}
        clone.live = set(self.live)
        clone.time_count = list(self.time_count)
        clone._lo, clone._hi = self._lo, self._hi
        return clone

    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self.live)

    def is_empty(self) -> bool:
        return not self.live

    def tti(self) -> tuple[int, int]:
        """Tightest time interval of the current core (Definition 3)."""
        if not self.live:
            raise ValueError("TTI of an empty core is undefined")
        count = self.time_count
        lo, hi = self._lo, self._hi
        while count[lo] == 0:
            lo += 1
        while count[hi] == 0:
            hi -= 1
        self._lo, self._hi = lo, hi
        return lo, hi

    def edge_ids(self) -> list[int]:
        return sorted(self.live)

    # ------------------------------------------------------------------

    def _kill_edge(self, eid: int) -> None:
        self.live.discard(eid)
        self.time_count[self.graph.edges[eid].t] -= 1

    def _cascade(self, seeds: deque[int]) -> None:
        k = self.k
        adj = self.adj
        while seeds:
            w = seeds.popleft()
            neighbours = adj.get(w)
            if neighbours is None or len(neighbours) >= k:
                continue
            del adj[w]
            for x in neighbours:
                pair = (w, x) if w < x else (x, w)
                for eid in self.pair_eids.pop(pair, ()):
                    self._kill_edge(eid)
                adj_x = adj.get(x)
                if adj_x is not None:
                    adj_x.discard(w)
                    if len(adj_x) < k:
                        seeds.append(x)

    def remove_edges_at(self, t: int, *, from_left: bool) -> None:
        """Delete every live temporal edge stamped ``t`` and cascade.

        ``from_left`` documents which side of the window is shrinking —
        it selects the deque end to pop so each deletion stays O(1).
        """
        seeds: deque[int] = deque()
        adj = self.adj
        batch = self.graph.edge_ids_at(t)
        if not from_left:
            # Per-pair deques are in ascending (time, edge-id) order, so
            # right-side pops must see the largest edge ids first.
            batch = tuple(reversed(batch))
        for eid in batch:
            if eid not in self.live:
                continue
            u, v, _ = self.graph.edges[eid]
            pair = (u, v)
            eids = self.pair_eids[pair]
            if from_left:
                popped = eids.popleft()
            else:
                popped = eids.pop()
            if popped != eid:
                raise AssertionError(
                    f"edge {eid} at t={t} is not at the expected deque end"
                )
            self._kill_edge(eid)
            if not eids:
                del self.pair_eids[pair]
                adj[u].discard(v)
                adj[v].discard(u)
                if len(adj[u]) < self.k:
                    seeds.append(u)
                if len(adj[v]) < self.k:
                    seeds.append(v)
        if seeds:
            self._cascade(seeds)

    def shrink_end_to(self, new_end: int, current_end: int) -> None:
        """Remove all edges with time in ``(new_end, current_end]``."""
        for t in range(current_end, new_end, -1):
            self.remove_edges_at(t, from_left=False)


def enumerate_otcd(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    use_pruning: bool = True,
    collect: bool = True,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Enumerate all distinct temporal k-cores with OTCD (Algorithm 1).

    ``use_pruning=False`` disables PoR jumps and the PoU/PoL registry
    (the pruning ablation); distinctness is then enforced purely by the
    TTI de-duplication table, which is exact because cores and TTIs are
    in one-to-one correspondence.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    result = EnumerationResult(
        "otcd" if use_pruning else "otcd-nopruning", k, (ts_lo, ts_hi)
    )
    if collect:
        result.cores = []
    outer = _CoreState.initial(graph, k, ts_lo, ts_hi)
    registry = PruneRegistry((ts_lo, ts_hi)) if use_pruning else None
    seen_ttis: set[tuple[int, int]] = set()

    for start in range(ts_lo, ts_hi + 1):
        if deadline is not None and deadline.expired():
            result.completed = False
            break
        if start > ts_lo:
            outer.remove_edges_at(start - 1, from_left=True)
        if outer.is_empty():
            break  # Cores only shrink as the start advances: done.
        pruned = registry.pruned_ends_for(start) if registry is not None else []

        inner = outer.copy()
        end = ts_hi
        while end >= start and not inner.is_empty():
            if pruned and interval_contains(pruned, end):
                # Jump below the pruned interval in one bulk shrink.
                target = _interval_lower_bound(pruned, end) - 1
                inner.shrink_end_to(max(target, start - 1), end)
                end = target
                continue
            tti = inner.tti()
            if tti not in seen_ttis:
                seen_ttis.add(tti)
                result.record(tti[0], tti[1], inner.edge_ids(), collect)
                if registry is not None:
                    registry.register_from_tti((start, end), tti)
            if registry is not None:
                # PoR: every end in [tti_end, end] repeats this core.
                target = tti[1] - 1
            else:
                target = end - 1
            inner.shrink_end_to(max(target, start - 1), end)
            end = target
    return result


def _interval_lower_bound(intervals: list[tuple[int, int]], value: int) -> int:
    """Lower bound of the merged interval containing ``value``."""
    lo, hi = 0, len(intervals) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        a, b = intervals[mid]
        if value < a:
            hi = mid - 1
        elif value > b:
            lo = mid + 1
        else:
            return a
    raise ValueError(f"{value} not inside any interval")
