"""Command-line interface.

Subcommands::

    python -m repro query     --input edges.txt -k 3 --range 10 80
    python -m repro stats     --input edges.txt          (or --dataset CM)
    python -m repro generate  --dataset CM -o cm.txt
    python -m repro index     --input edges.txt -k 3 -o skyline.ecs
    python -m repro experiments fig6 --profile quick

``query`` prints each temporal k-core's TTI, vertex count and edge count
(``--format json`` emits machine-readable output; ``--streaming`` counts
without materialising, for huge result sets).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.bench.experiments import main as experiments_main
from repro.core.index import CoreIndex
from repro.core.query import ENGINES, TimeRangeCoreQuery
from repro.datasets.registry import ALL_DATASETS, load_dataset
from repro.datasets.stats import compute_stats
from repro.errors import ReproError
from repro.graph.io import dump_edge_list, load_edge_list
from repro.graph.temporal_graph import TemporalGraph


def _load_graph(args: argparse.Namespace) -> TemporalGraph:
    if getattr(args, "dataset", None):
        return load_dataset(args.dataset)
    if getattr(args, "input", None):
        return load_edge_list(args.input, layout=args.layout)
    raise ReproError("provide --input FILE or --dataset NAME")


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="edge-list file (u v t per line)")
    parser.add_argument(
        "--layout", choices=("snap", "konect"), default="snap",
        help="edge-list layout (default: snap)",
    )
    parser.add_argument(
        "--dataset", choices=ALL_DATASETS,
        help="use a registry dataset instead of a file",
    )


def cmd_query(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    time_range = tuple(args.range) if args.range else None
    query = TimeRangeCoreQuery(
        graph,
        k=args.k,
        time_range=time_range,
        engine=args.engine,
        collect=not args.streaming,
        timeout=args.timeout,
    )
    result = query.run()
    if args.format == "json":
        payload: dict = {
            "k": args.k,
            "time_range": list(query.time_range),
            "engine": args.engine,
            "num_results": result.num_results,
            "total_edges": result.total_edges,
            "completed": result.completed,
        }
        if not args.streaming:
            payload["cores"] = [
                {
                    "tti": list(core.tti),
                    "vertices": sorted(map(str, core.vertex_labels(graph))),
                    "num_edges": core.num_edges,
                }
                for core in result
            ]
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{result.num_results} temporal {args.k}-core(s) in "
        f"[{query.time_range[0]}, {query.time_range[1]}], "
        f"|R| = {result.total_edges} edges"
        + ("" if result.completed else "  [TIMED OUT - partial]")
    )
    if not args.streaming:
        for core in result:
            vertices = sorted(map(str, core.vertex_labels(graph)))
            print(f"  TTI [{core.tti[0]}, {core.tti[1]}]: "
                  f"{len(vertices)} vertices, {core.num_edges} edges: "
                  f"{', '.join(vertices[:8])}"
                  f"{', ...' if len(vertices) > 8 else ''}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = compute_stats(graph)
    rows = {
        "vertices": stats.num_vertices,
        "temporal_edges": stats.num_edges,
        "distinct_timestamps": stats.tmax,
        "kmax": stats.kmax,
        "avg_degree": round(stats.avg_degree, 3),
    }
    if args.format == "json":
        print(json.dumps(rows, indent=2))
    else:
        for key, value in rows.items():
            print(f"{key:>20}: {value}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset)
    dump_edge_list(graph, args.output, raw_timestamps=False)
    print(f"wrote {graph.num_edges} edges ({graph.num_vertices} vertices, "
          f"tmax={graph.tmax}) to {args.output}")
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    index = CoreIndex(graph, args.k)
    index.dump_skyline(args.output)
    print(f"|VCT| = {index.vct.size()}, |ECS| = {index.ecs.size()} "
          f"-> {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal k-core enumeration (EDBT 2026 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="enumerate temporal k-cores")
    _add_graph_source(query)
    query.add_argument("-k", type=int, required=True, help="minimum degree")
    query.add_argument(
        "--range", nargs=2, type=int, metavar=("TS", "TE"),
        help="query time range in normalised timestamps (default: full span)",
    )
    query.add_argument("--engine", choices=ENGINES, default="enum")
    query.add_argument("--format", choices=("text", "json"), default="text")
    query.add_argument(
        "--streaming", action="store_true",
        help="count results without materialising them",
    )
    query.add_argument("--timeout", type=float, default=None)
    query.set_defaults(func=cmd_query)

    stats = sub.add_parser("stats", help="Table III statistics of a graph")
    _add_graph_source(stats)
    stats.add_argument("--format", choices=("text", "json"), default="text")
    stats.set_defaults(func=cmd_stats)

    generate = sub.add_parser("generate", help="materialise a registry dataset")
    generate.add_argument("--dataset", choices=ALL_DATASETS, required=True)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=cmd_generate)

    index = sub.add_parser("index", help="build and save a core index")
    _add_graph_source(index)
    index.add_argument("-k", type=int, required=True)
    index.add_argument("-o", "--output", required=True)
    index.set_defaults(func=cmd_index)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("experiment")
    experiments.add_argument("--profile", choices=("quick", "full"))
    experiments.set_defaults(func=None)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        forward = [args.experiment]
        if args.profile:
            forward += ["--profile", args.profile]
        return experiments_main(forward)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
