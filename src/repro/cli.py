"""Command-line interface.

Subcommands::

    python -m repro query     --input edges.txt -k 3 --range 10 80
    python -m repro query     --store var/idx -k 3 --range 10 80
    python -m repro query     --input edges.txt -k 3 --output ndjson
    python -m repro batch     --input edges.txt --queries q.txt
    python -m repro stats     --input edges.txt          (or --dataset CM)
    python -m repro generate  --dataset CM -o cm.txt
    python -m repro index     --input edges.txt -k 2,3,5 --save-store var/idx
    python -m repro warm      --store var/idx --dataset CM --ks 2,3,5
    python -m repro experiments fig6 --profile quick

``query`` prints each temporal k-core's TTI, vertex count and edge count
(``--format json`` emits machine-readable output; ``--streaming`` counts
without materialising, for huge result sets).  ``--output ndjson``
streams one JSON line per core to stdout as it is enumerated —
nothing is buffered, so wide windows cost O(1) memory; ``--output
count`` reports the counters only.  Both are delivered through the
serving layer's result sinks (``repro.serve.sinks``).  ``--store DIR``
answers from the on-disk index store — precomputed indexes are opened
via mmap instead of recomputed; missing entries are built once and
persisted.

``batch`` answers a whole query file (one ``k ts te`` triple per line)
through the query planner (``repro.serve.planner``): identical ranges
are answered once, overlapping ranges share one enumeration, and all
``k`` values missing from the registry are built in one shared scan.

``index`` and ``warm`` accept several ``k`` values and build all the
missing ones in a single shared decremental scan (``repro.core.multik``);
``warm`` prebuilds a store for a dataset so daemons cold-start warm.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.bench.experiments import main as experiments_main
from repro.core.index import CoreIndex, CoreIndexRegistry
from repro.core.multik import build_core_indexes
from repro.core.query import ENGINES, TimeRangeCoreQuery
from repro.datasets.registry import ALL_DATASETS, load_dataset
from repro.datasets.stats import compute_stats
from repro.errors import ReproError
from repro.graph.io import dump_edge_list, load_edge_list
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.metrics import get_registry
from repro.obs.report import report as obs_report
from repro.obs.timing import Deadline
from repro.obs.trace import Trace
from repro.serve import CountSink, NDJSONSink, QueryRequest, execute_plan, plan_queries
from repro.store import IndexStore
from repro.store.index_store import _pid_alive


def _write_metrics(path: str) -> None:
    """Dump the process metrics registry as JSON to ``path`` (``-`` = stdout)."""
    rendered = get_registry().render_json() + "\n"
    if path == "-":
        sys.stdout.write(rendered)
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    except OSError as exc:
        raise ReproError(f"cannot write metrics to {path!r}: {exc}") from exc


def _write_trace(trace: Trace, path: str) -> None:
    """Dump ``trace`` as NDJSON span events to ``path`` (``-`` = stdout)."""
    if path == "-":
        trace.write_ndjson(sys.stdout)
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            trace.write_ndjson(handle)
    except OSError as exc:
        raise ReproError(f"cannot write trace to {path!r}: {exc}") from exc


def _load_graph(args: argparse.Namespace) -> TemporalGraph:
    if getattr(args, "dataset", None):
        return load_dataset(args.dataset)
    if getattr(args, "input", None):
        return load_edge_list(args.input, layout=args.layout)
    raise ReproError("provide --input FILE or --dataset NAME")


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="edge-list file (u v t per line)")
    parser.add_argument(
        "--layout", choices=("snap", "konect"), default="snap",
        help="edge-list layout (default: snap)",
    )
    parser.add_argument(
        "--dataset", choices=ALL_DATASETS,
        help="use a registry dataset instead of a file",
    )


def _query_via_store(args: argparse.Namespace, sink):
    """Resolve (graph, result) for ``query --store``: disk before compute."""
    store = IndexStore(args.store)
    key = None
    if args.input or args.dataset:
        graph = _load_graph(args)
    else:
        try:
            key = store.only_key(args.store_graph)
        except ReproError as exc:
            raise ReproError(f"{exc} (--store-graph NAME)") from None
        graph = store.load_graph(key)
    index = store.load_index(graph, args.k, key=key)
    if index is None:
        index = CoreIndex(graph, args.k)
        store.save_index(index, name=args.store_graph)
    ts, te = tuple(args.range) if args.range else (1, graph.tmax)
    deadline = Deadline(args.timeout) if args.timeout is not None else None
    result = index.query(
        ts, te, collect=not args.streaming, sink=sink, deadline=deadline
    )
    return graph, (ts, te), result


def _query_sink(args: argparse.Namespace):
    """The delivery sink for ``query --output``, or ``None`` (materialise)."""
    if args.output == "ndjson":
        return NDJSONSink(sys.stdout)
    if args.output == "count":
        return CountSink()
    return None


def cmd_query(args: argparse.Namespace) -> int:
    sink = _query_sink(args)
    if args.store:
        graph, time_range, result = _query_via_store(args, sink)
        engine = "store"
    else:
        graph = _load_graph(args)
        query = TimeRangeCoreQuery(
            graph,
            k=args.k,
            time_range=tuple(args.range) if args.range else None,
            engine=args.engine,
            collect=not args.streaming,
            timeout=args.timeout,
        )
        result = query.run(sink=sink)
        time_range = query.time_range
        engine = args.engine
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    if args.output == "ndjson":
        # Cores already streamed line by line; nothing is buffered to print.
        return 0 if result.completed else 1
    if args.output == "count":
        # Always exactly two fields on stdout (scripts field-split this);
        # a timeout goes to stderr and the exit code, like ndjson.
        print(f"{result.num_results} {result.total_edges}")
        if not result.completed:
            print("warning: timed out - counts are partial", file=sys.stderr)
            return 1
        return 0
    if args.format == "json":
        payload: dict = {
            "k": args.k,
            "time_range": list(time_range),
            "engine": engine,
            "num_results": result.num_results,
            "total_edges": result.total_edges,
            "completed": result.completed,
        }
        if not args.streaming:
            payload["cores"] = [
                {
                    "tti": list(core.tti),
                    "vertices": sorted(map(str, core.vertex_labels(graph))),
                    "num_edges": core.num_edges,
                }
                for core in result
            ]
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{result.num_results} temporal {args.k}-core(s) in "
        f"[{time_range[0]}, {time_range[1]}], "
        f"|R| = {result.total_edges} edges"
        + ("" if result.completed else "  [TIMED OUT - partial]")
    )
    if not args.streaming:
        for core in result:
            vertices = sorted(map(str, core.vertex_labels(graph)))
            print(f"  TTI [{core.tti[0]}, {core.tti[1]}]: "
                  f"{len(vertices)} vertices, {core.num_edges} edges: "
                  f"{', '.join(vertices[:8])}"
                  f"{', ...' if len(vertices) > 8 else ''}")
    return 0


def _parse_query_file(path: str) -> list[tuple[int, int, int]]:
    """Parse a batch query file: one ``k ts te`` triple per line.

    Blank lines and ``#`` comments are skipped; malformed lines raise
    :class:`ReproError` naming the line number.
    """
    queries: list[tuple[int, int, int]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ReproError(f"cannot read query file {path!r}: {exc}") from exc
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ReproError(
                f"{path}:{lineno}: expected 'k ts te', got {line!r}"
            )
        try:
            k, ts, te = (int(part) for part in parts)
        except ValueError:
            raise ReproError(
                f"{path}:{lineno}: expected integers, got {line!r}"
            ) from None
        queries.append((k, ts, te))
    if not queries:
        raise ReproError(f"query file {path!r} holds no queries")
    return queries


def cmd_batch(args: argparse.Namespace) -> int:
    """Answer a query file through the planner (one plan, shared windows)."""
    graph = _load_graph(args)
    queries = _parse_query_file(args.queries)
    store = IndexStore(args.store) if args.store else None
    distinct_ks = sorted({k for k, _, _ in queries})
    # A dedicated registry sized for the file: every distinct k stays
    # resident from the prefetch through execution (the process-wide
    # default holds 8 and would evict — and then rebuild — beyond that).
    registry = CoreIndexRegistry(
        capacity=max(len(distinct_ks), 1), store=store
    )
    # Resolve every distinct k first: store fallthrough, then one shared
    # scan for whatever is missing — never one Algorithm-2 run per k.
    registry.get_many(graph, distinct_ks)
    try:
        requests = [QueryRequest(graph, k, ts, te) for k, ts, te in queries]
    except ReproError as exc:
        raise ReproError(f"invalid query: {exc}") from exc
    trace = Trace("batch") if args.trace_out else None
    plan = plan_queries(
        requests, engine="index", merge_overlaps=not args.no_merge,
        trace=trace,
    )
    if args.processes:
        from repro.serve.parallel import open_pool

        # Workers attach to --store when given (mmap, zero copy); an
        # ephemeral store backs the pool otherwise.
        with open_pool(args.processes, store=store) as pool:
            results = execute_plan(
                plan, registry=registry, store=store, parallel=pool
            )
    else:
        results = execute_plan(plan, registry=registry, store=store)
    if trace is not None:
        _write_trace(trace, args.trace_out)
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    stats = plan.stats
    if args.format == "json":
        print(json.dumps({
            "plan": stats,
            "answers": [
                {
                    "k": k,
                    "time_range": [ts, te],
                    "num_results": result.num_results,
                    "total_edges": result.total_edges,
                    "completed": result.completed,
                }
                for (k, ts, te), result in zip(queries, results)
            ],
        }, indent=2))
        return 0
    for (k, ts, te), result in zip(queries, results):
        print(f"k={k} [{ts}, {te}]: {result.num_results} core(s), "
              f"|R| = {result.total_edges}")
    print(f"plan: {stats['requests']} queries -> {stats['windows']} window(s) "
          f"in {stats['groups']} group(s); {stats['deduped']} identical "
          f"deduped, {stats['merged']} merged into shared windows")
    return 0


def _store_stats(args: argparse.Namespace) -> int:
    """``stats --store DIR``: persisted keys, sizes, and lock liveness."""
    store = IndexStore(args.store)
    keys = []
    for key in store.keys():
        manifest = store.manifest(key)
        fingerprint = manifest.get("fingerprint", {})
        lock = store.lock_info(key)
        if lock is not None:
            lock = dict(lock)
            lock["alive"] = _pid_alive(int(lock.get("pid", 0)))
        keys.append({
            "key": key,
            "vertices": fingerprint.get("num_vertices"),
            "temporal_edges": fingerprint.get("num_edges"),
            "tmax": fingerprint.get("tmax"),
            "indexes": [
                {
                    "k": int(k),
                    "vct_size": entry.get("vct_size"),
                    "ecs_size": entry.get("ecs_size"),
                }
                for k, entry in sorted(
                    manifest.get("indexes", {}).items(),
                    key=lambda item: int(item[0]),
                )
            ],
            "lock": lock,
        })
    payload = {
        "root": str(store.root),
        "keys": keys,
        "stale_takeovers": store.stale_takeovers,
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2))
        return 0
    print(f"store {payload['root']}: {len(keys)} graph(s), "
          f"{payload['stale_takeovers']} stale lock takeover(s) this process")
    for entry in keys:
        print(f"  {entry['key']}: {entry['vertices']} vertices, "
              f"{entry['temporal_edges']} edges, tmax={entry['tmax']}")
        for index in entry["indexes"]:
            print(f"    k={index['k']}: |VCT| = {index['vct_size']}, "
                  f"|ECS| = {index['ecs_size']}")
        lock = entry["lock"]
        if lock is None:
            print("    lock: free")
        else:
            state = "live" if lock["alive"] else "stale (holder dead)"
            print(f"    lock: held by pid {lock['pid']} [{state}], "
                  f"acquired_at={lock.get('acquired_at')}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.store:
        return _store_stats(args)
    if args.metrics:
        # The live process registry: whatever this process instrumented
        # (with --input/--dataset the graph stats are computed first, so
        # their instruments appear in the report too).
        if args.input or args.dataset:
            compute_stats(_load_graph(args))
        if args.format == "json":
            print(get_registry().render_json())
        else:
            print(obs_report(), end="")
        return 0
    graph = _load_graph(args)
    stats = compute_stats(graph)
    rows = {
        "vertices": stats.num_vertices,
        "temporal_edges": stats.num_edges,
        "distinct_timestamps": stats.tmax,
        "kmax": stats.kmax,
        "avg_degree": round(stats.avg_degree, 3),
    }
    if args.format == "json":
        print(json.dumps(rows, indent=2))
    else:
        for key, value in rows.items():
            print(f"{key:>20}: {value}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset)
    dump_edge_list(graph, args.output, raw_timestamps=False)
    print(f"wrote {graph.num_edges} edges ({graph.num_vertices} vertices, "
          f"tmax={graph.tmax}) to {args.output}")
    return 0


def _parse_k_list(value: str) -> list[int]:
    """``"3"`` or ``"2,3,5"`` -> list of ints (argparse type helper)."""
    try:
        ks = [int(part) for part in value.split(",") if part.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected K or K,K,... (integers), got {value!r}"
        ) from None
    if not ks:
        raise argparse.ArgumentTypeError("expected at least one k value")
    return ks


def cmd_index(args: argparse.Namespace) -> int:
    if not args.output and not args.save_store:
        raise ReproError("provide -o FILE (debug text dump) and/or --save-store DIR")
    ks = sorted(set(args.k))
    if args.output and len(ks) > 1:
        raise ReproError("-o writes a single text dump; use it with exactly one -k")
    graph = _load_graph(args)
    if args.save_store:
        # One shared scan for every missing k; existing entries reused.
        indexes = IndexStore(args.save_store).build_all(
            graph, ks, name=args.name or args.dataset
        )
    else:
        indexes = build_core_indexes(graph, ks)
    for k in ks:
        index = indexes[k]
        sinks = []
        if args.output:
            index.dump_skyline(args.output)
            sinks.append(f"{args.output} (debug text)")
        if args.save_store:
            sinks.append(f"{args.save_store} (binary store)")
        print(f"k={k}: |VCT| = {index.vct.size()}, |ECS| = {index.ecs.size()} "
              f"-> {'; '.join(sinks)}")
    return 0


def cmd_warm(args: argparse.Namespace) -> int:
    """Prebuild a store so serving processes open indexes instead of computing."""
    ks = sorted(
        {k for group in (args.k or []) for k in group} | set(args.ks or [])
    )
    if not ks:
        raise ReproError("provide -k K [K ...] and/or --ks K,K,...")
    store = IndexStore(args.store)
    graph = _load_graph(args)
    # Missing k values are built together in one shared decremental scan;
    # `already` is filled with the ks that actually loaded from disk
    # (fingerprint + checksum pass) — a manifest row whose blob rotted
    # is rebuilt and reported as such, not as reused.
    already: set[int] = set()
    indexes = store.build_all(
        graph, ks, name=args.name or args.dataset, reused=already
    )
    for k in ks:
        index = indexes[k]
        note = " (already stored, reused)" if k in already else f" -> {args.store}"
        print(f"k={k}: |VCT| = {index.vct.size()}, |ECS| = {index.ecs.size()}{note}")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Scrub a store: verify checksums, quarantine corruption, repair."""
    import json as _json

    from repro.store.fsck import scrub_store

    report = scrub_store(
        args.store, repair=not args.dry_run, verify=not args.no_verify
    )
    if args.format == "json":
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.clean else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving daemon in the foreground until drained."""
    import asyncio

    from repro.serve.daemon import ServingDaemon

    daemon = ServingDaemon(
        args.store,
        host=args.host,
        port=args.port,
        processes=args.processes or None,
        queue_depth=args.queue_depth,
        outbox_depth=args.outbox_depth,
        capacity=args.capacity,
        default_timeout=args.deadline,
        terminal_grace=args.terminal_grace,
        pool_min_windows=args.pool_min_windows,
        warm=not args.no_warm,
        max_lag=args.max_lag,
    )
    return asyncio.run(daemon.run(announce=True))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal k-core enumeration (EDBT 2026 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="enumerate temporal k-cores")
    _add_graph_source(query)
    query.add_argument("-k", type=int, required=True, help="minimum degree")
    query.add_argument(
        "--range", nargs=2, type=int, metavar=("TS", "TE"),
        help="query time range in normalised timestamps (default: full span)",
    )
    query.add_argument("--engine", choices=ENGINES, default="enum")
    query.add_argument("--format", choices=("text", "json"), default="text")
    query.add_argument(
        "--streaming", action="store_true",
        help="count results without materialising them",
    )
    query.add_argument("--timeout", type=float, default=None)
    query.add_argument(
        "--store", metavar="DIR",
        help="answer from an on-disk index store (open + filter instead of "
             "recompute); missing entries are built once and persisted",
    )
    query.add_argument(
        "--store-graph", metavar="KEY",
        help="store key to serve when no --input/--dataset is given "
             "(defaults to the store's only graph)",
    )
    query.add_argument(
        "--output", choices=("ndjson", "count"),
        help="stream results through a serving sink: 'ndjson' writes one "
             "JSON line per core to stdout as enumerated (O(1) memory), "
             "'count' prints 'num_results total_edges' only",
    )
    query.add_argument(
        "--metrics-out", metavar="FILE",
        help="dump the process metrics registry as JSON after answering "
             "('-' = stdout)",
    )
    query.set_defaults(func=cmd_query)

    batch = sub.add_parser(
        "batch", help="answer a query file through the query planner"
    )
    _add_graph_source(batch)
    batch.add_argument(
        "--queries", required=True, metavar="FILE",
        help="query file: one 'k ts te' triple per line (# comments ok)",
    )
    batch.add_argument(
        "--store", metavar="DIR",
        help="index store consulted before computing missing (graph, k) "
             "indexes",
    )
    batch.add_argument(
        "--no-merge", action="store_true",
        help="disable overlap merging (only identical ranges share work)",
    )
    batch.add_argument(
        "--processes", type=int, default=0, metavar="N",
        help="fan the planned windows out over N worker processes "
             "attached to the shared index store by mmap (0 = in-process)",
    )
    batch.add_argument("--format", choices=("text", "json"), default="text")
    batch.add_argument(
        "--metrics-out", metavar="FILE",
        help="dump the process metrics registry as JSON after the batch "
             "('-' = stdout)",
    )
    batch.add_argument(
        "--trace-out", metavar="FILE",
        help="record plan/execute spans and write them as NDJSON "
             "('-' = stdout)",
    )
    batch.set_defaults(func=cmd_batch)

    stats = sub.add_parser(
        "stats", help="Table III statistics of a graph, or of an index store"
    )
    _add_graph_source(stats)
    stats.add_argument(
        "--store", metavar="DIR",
        help="report an index store instead: persisted keys, index sizes, "
             "writer-lock liveness, stale takeovers",
    )
    stats.add_argument(
        "--metrics", action="store_true",
        help="report the live process metrics registry instead "
             "(counters, gauges, latency histograms)",
    )
    stats.add_argument("--format", choices=("text", "json"), default="text")
    stats.set_defaults(func=cmd_stats)

    generate = sub.add_parser("generate", help="materialise a registry dataset")
    generate.add_argument("--dataset", choices=ALL_DATASETS, required=True)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=cmd_generate)

    index = sub.add_parser("index", help="build and save core indexes")
    _add_graph_source(index)
    index.add_argument(
        "-k", type=_parse_k_list, required=True, metavar="K[,K...]",
        help="one k, or several comma-separated (built in one shared scan)",
    )
    index.add_argument(
        "-o", "--output",
        help="text skyline dump (debug format; the binary store is primary)",
    )
    index.add_argument(
        "--save-store", metavar="DIR",
        help="persist graph + index into an on-disk index store",
    )
    index.add_argument(
        "--name", help="store key to save under (default: dataset name or "
                       "a fingerprint-derived key)",
    )
    index.set_defaults(func=cmd_index)

    warm = sub.add_parser(
        "warm", help="prebuild an index store for a dataset (daemon warm-up)"
    )
    _add_graph_source(warm)
    warm.add_argument("--store", required=True, metavar="DIR")
    warm.add_argument(
        "-k", type=_parse_k_list, nargs="+", metavar="K[,K...]",
        help="k values to prebuild (space- and/or comma-separated)",
    )
    warm.add_argument(
        "--ks", type=_parse_k_list, metavar="K,K,...",
        help="comma-separated k values (merged with -k); missing entries "
             "are built together in one shared scan",
    )
    warm.add_argument(
        "--name", help="store key to save under (default: dataset name or "
                       "a fingerprint-derived key)",
    )
    warm.set_defaults(func=cmd_warm)

    serve = sub.add_parser(
        "serve", help="run the serving daemon (NDJSON protocol + /metrics)"
    )
    serve.add_argument("--store", required=True, metavar="DIR",
                       help="index store to serve (see `repro warm`)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7471,
        help="TCP port (0 binds an ephemeral port; default: 7471)",
    )
    serve.add_argument(
        "--processes", type=int, default=0, metavar="N",
        help="worker-pool processes for intra-request parallelism "
             "(default: 0, execute in-process)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="admission-control bound; excess requests are rejected "
             "with an `overloaded` error frame (default: 64)",
    )
    serve.add_argument(
        "--outbox-depth", type=int, default=256, metavar="N",
        help="per-connection send-buffer bound, in frames (default: 256)",
    )
    serve.add_argument(
        "--capacity", type=int, default=16, metavar="N",
        help="index-registry LRU capacity (default: 16)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline for requests without a "
             "`timeout` field (default: none)",
    )
    serve.add_argument(
        "--terminal-grace", type=float, default=5.0, metavar="SECONDS",
        help="after a request's deadline expires, how long a client "
             "gets to accept the terminal frame before the daemon "
             "hangs up on it (default: 5)",
    )
    serve.add_argument(
        "--pool-min-windows", type=int, default=2, metavar="N",
        help="smallest plan the worker pool dispatches (default: 2)",
    )
    serve.add_argument(
        "--no-warm", action="store_true",
        help="skip preloading stored indexes at boot",
    )
    serve.add_argument(
        "--max-lag", type=float, default=None, metavar="SECONDS",
        help="freshness budget: a query against a key whose oldest "
             "unflushed append is older than this triggers a flush "
             "first (default: none, flush only on request)",
    )
    serve.set_defaults(func=cmd_serve)

    fsck = sub.add_parser(
        "fsck",
        help="scrub a store: verify checksums and manifest consistency, "
             "quarantine corrupt files to *.corrupt, repair what is "
             "rebuildable (exit 1 when issues were found)",
    )
    fsck.add_argument(
        "--store", required=True, metavar="DIR", help="store directory to scrub"
    )
    fsck.add_argument(
        "--dry-run", action="store_true",
        help="report issues without changing anything on disk",
    )
    fsck.add_argument(
        "--no-verify", action="store_true",
        help="skip payload checksum passes (structure/consistency only)",
    )
    fsck.add_argument("--format", choices=("text", "json"), default="text")
    fsck.set_defaults(func=cmd_fsck)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("experiment")
    experiments.add_argument("--profile", choices=("quick", "full"))
    experiments.set_defaults(func=None)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        forward = [args.experiment]
        if args.profile:
            forward += ["--profile", args.profile]
        return experiments_main(forward)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
