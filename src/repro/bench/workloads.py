"""Query workload generation.

The paper's protocol (Section VI): vary ``k`` over {10, 20, 30, 40}% of
``kmax`` (default 30%) and the range width over {5, 10, 20, 40}% of
``tmax`` (default 10%); sample random query ranges, each guaranteed to
contain at least one temporal k-core; report averages.

A range contains a temporal k-core iff the k-core of its *widest* window
is non-empty (cores are monotone in the window), which gives a cheap
acceptance test.  When random sampling keeps missing (sparse graphs,
large k), the generator falls back to scanning candidate offsets
deterministically so workloads are always reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.stats import DatasetStats, compute_stats
from repro.errors import BenchmarkError
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import snapshot_k_core
from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class Workload:
    """A fully-resolved benchmark workload for one parameter point."""

    dataset: str
    k: int
    width: int
    ranges: tuple[tuple[int, int], ...]
    k_fraction: float
    range_fraction: float

    @property
    def num_queries(self) -> int:
        return len(self.ranges)


def range_has_core(graph: TemporalGraph, k: int, ts: int, te: int) -> bool:
    """Does ``[ts, te]`` contain at least one temporal k-core?

    Equivalent to the k-core of the widest window being non-empty.
    """
    snapshot = Snapshot.from_graph(graph, ts, te)
    return bool(snapshot_k_core(snapshot, k))


def sample_query_ranges(
    graph: TemporalGraph,
    k: int,
    width: int,
    num_queries: int,
    *,
    seed: int = 0,
    max_attempts_factor: int = 50,
) -> list[tuple[int, int]]:
    """Sample ``num_queries`` ranges of ``width`` timestamps with cores.

    Ranges may overlap (the paper imposes no disjointness).  Raises
    :class:`BenchmarkError` when no window of this width contains a
    k-core at all.
    """
    tmax = graph.tmax
    width = min(width, tmax)
    rng = np.random.default_rng(seed)
    ranges: list[tuple[int, int]] = []
    attempts = 0
    max_attempts = max_attempts_factor * max(1, num_queries)
    while len(ranges) < num_queries and attempts < max_attempts:
        attempts += 1
        ts = int(rng.integers(1, tmax - width + 2))
        te = ts + width - 1
        if range_has_core(graph, k, ts, te):
            ranges.append((ts, te))
    if len(ranges) < num_queries:
        # Deterministic sweep fallback: accept every admissible offset.
        step = max(1, (tmax - width + 1) // (4 * num_queries + 1))
        for ts in range(1, tmax - width + 2, step):
            te = ts + width - 1
            if range_has_core(graph, k, ts, te):
                ranges.append((ts, te))
                if len(ranges) >= num_queries:
                    break
    if not ranges:
        raise BenchmarkError(
            f"no window of width {width} contains a {k}-core in this graph"
        )
    return ranges[:num_queries]


def build_workload(
    graph: TemporalGraph,
    dataset: str,
    *,
    k_fraction: float = 0.3,
    range_fraction: float = 0.1,
    num_queries: int = 5,
    seed: int = 0,
    stats: DatasetStats | None = None,
) -> Workload:
    """Resolve paper-style fractional parameters into a concrete workload."""
    if stats is None:
        stats = compute_stats(graph)
    k = max(2, round(stats.kmax * k_fraction))
    width = max(1, round(stats.tmax * range_fraction))
    ranges = sample_query_ranges(graph, k, width, num_queries, seed=seed)
    return Workload(
        dataset=dataset,
        k=k,
        width=width,
        ranges=tuple(ranges),
        k_fraction=k_fraction,
        range_fraction=range_fraction,
    )
