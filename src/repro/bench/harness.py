"""The experiment harness: timed, deadline-guarded algorithm runs.

Mirrors the paper's measurement protocol (Section VI):

* every parameter point runs a workload of random query ranges that are
  guaranteed to contain at least one temporal k-core;
* each algorithm gets a per-query soft time limit; expiries are recorded
  as DNFs exactly like the paper reports OTCD timeouts;
* the core-time precomputation (Algorithm 2) is timed separately from
  the enumeration phases, since Figure 6 plots *CoreTime*, *EnumBase*
  and *Enum* as separate series sharing the precomputation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.baselines.otcd import enumerate_otcd
from repro.bench.memory import measure_peak_memory
from repro.bench.workloads import Workload, build_workload
from repro.core.coretime import compute_core_times
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset
from repro.datasets.stats import compute_stats
from repro.errors import BenchmarkError
from repro.obs.timing import Deadline

#: Engines of the main comparison (Figure 6's series).
FIG6_ENGINES = ("otcd", "coretime", "enumbase", "enum")


@dataclass
class QueryRecord:
    """One (engine, query range) measurement."""

    engine: str
    time_range: tuple[int, int]
    seconds: float
    completed: bool
    num_results: int = 0
    total_edges: int = 0
    peak_bytes: int = 0
    vct_size: int = 0
    ecs_size: int = 0


@dataclass
class EngineSummary:
    """Aggregate over a workload for one engine."""

    engine: str
    records: list[QueryRecord] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return len(self.records)

    @property
    def num_dnf(self) -> int:
        return sum(1 for r in self.records if not r.completed)

    @property
    def mean_seconds(self) -> float | None:
        """Mean wall-clock over *completed* queries (None if all DNF)."""
        done = [r.seconds for r in self.records if r.completed]
        return sum(done) / len(done) if done else None

    @property
    def mean_results(self) -> float:
        done = [r.num_results for r in self.records if r.completed]
        return sum(done) / len(done) if done else math.nan

    @property
    def mean_total_edges(self) -> float:
        done = [r.total_edges for r in self.records if r.completed]
        return sum(done) / len(done) if done else math.nan

    @property
    def mean_peak_bytes(self) -> float:
        done = [r.peak_bytes for r in self.records if r.completed]
        return sum(done) / len(done) if done else math.nan


def _run_engine_once(
    graph,
    engine: str,
    k: int,
    ts: int,
    te: int,
    timeout: float | None,
    collect: bool,
) -> QueryRecord:
    """One timed run of one engine on one query range."""
    deadline = Deadline(timeout) if timeout is not None else None
    t0 = time.perf_counter()
    if engine == "coretime":
        result_ct = compute_core_times(graph, k, ts, te)
        seconds = time.perf_counter() - t0
        assert result_ct.ecs is not None
        return QueryRecord(
            engine,
            (ts, te),
            seconds,
            completed=True,
            vct_size=result_ct.vct.size(),
            ecs_size=result_ct.ecs.size(),
        )
    if engine in ("enum", "enumbase"):
        # The enumeration phases include the skyline computation they
        # depend on, matching the paper's Enum+CoreTime totals; the
        # harness also exposes the bare CoreTime cost via the engine
        # above so the split can be reported.
        ct = compute_core_times(graph, k, ts, te)
        if engine == "enum":
            result = enumerate_temporal_kcores(
                graph, k, ts, te, skyline=ct.ecs, collect=collect, deadline=deadline
            )
        else:
            # Cap EnumBase's de-duplication table (~300 MB) so its
            # characteristic memory blow-up registers as a DNF instead of
            # taking the process down, mirroring the paper's failures.
            result = enumerate_temporal_kcores_base(
                graph, k, ts, te, skyline=ct.ecs, collect=collect,
                deadline=deadline, max_stored_edges=20_000_000,
            )
    elif engine == "otcd":
        result = enumerate_otcd(
            graph, k, ts, te, collect=collect, deadline=deadline
        )
    elif engine == "otcd-nopruning":
        result = enumerate_otcd(
            graph, k, ts, te, use_pruning=False, collect=collect, deadline=deadline
        )
    else:
        raise BenchmarkError(f"unknown engine {engine!r}")
    seconds = time.perf_counter() - t0
    return QueryRecord(
        engine,
        (ts, te),
        seconds,
        completed=result.completed,
        num_results=result.num_results,
        total_edges=result.total_edges,
    )


def run_workload(
    graph,
    workload: Workload,
    engines: tuple[str, ...] = FIG6_ENGINES,
    *,
    timeout: float | None = 15.0,
    collect: bool = False,
    measure_memory: bool = False,
) -> dict[str, EngineSummary]:
    """Run every engine over every query range of a workload."""
    summaries = {engine: EngineSummary(engine) for engine in engines}
    for ts, te in workload.ranges:
        for engine in engines:
            if measure_memory:
                record, peak = measure_peak_memory(
                    lambda: _run_engine_once(
                        graph, engine, workload.k, ts, te, timeout, collect
                    )
                )
                record.peak_bytes = peak
            else:
                record = _run_engine_once(
                    graph, engine, workload.k, ts, te, timeout, collect
                )
            summaries[engine].records.append(record)
    return summaries


def run_dataset_point(
    dataset: str,
    *,
    k_fraction: float = 0.3,
    range_fraction: float = 0.1,
    num_queries: int = 3,
    engines: tuple[str, ...] = FIG6_ENGINES,
    timeout: float | None = 15.0,
    seed: int = 0,
    collect: bool = False,
    measure_memory: bool = False,
) -> tuple[Workload, dict[str, EngineSummary]]:
    """Full pipeline for one (dataset, k%, range%) parameter point."""
    graph = load_dataset(dataset)
    stats = compute_stats(graph)
    workload = build_workload(
        graph,
        dataset,
        k_fraction=k_fraction,
        range_fraction=range_fraction,
        num_queries=num_queries,
        seed=seed,
        stats=stats,
    )
    summaries = run_workload(
        graph,
        workload,
        engines,
        timeout=timeout,
        collect=collect,
        measure_memory=measure_memory,
    )
    return workload, summaries
