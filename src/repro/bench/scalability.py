"""Scalability sweep: runtime vs graph size at fixed shape.

Not a paper figure, but the natural follow-up question: how do the
engines scale as the *graph* grows (edges and timestamps together,
density fixed)?  The paper's complexity analysis predicts:

* `Enum + CoreTime` grows with `|VCT| · deg_avg + |R|` — roughly linear
  in the result mass;
* OTCD grows with `tmax · (m + tmax)` — super-linear in the size because
  both factors scale with it.

``run_scalability_sweep`` generates a family of bursty graphs scaled by
a factor, runs each engine on a default-parameter workload, and returns
rows suitable for :func:`repro.bench.reporting.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_workload
from repro.bench.workloads import build_workload
from repro.errors import BenchmarkError
from repro.graph.generators import BurstyConfig, generate_bursty

#: The base recipe the sweep scales (a small CM-like shape).
BASE = BurstyConfig(
    num_vertices=60,
    background_edges=480,
    tmax=760,
    exponent=2.3,
    num_bursts=6,
    burst_size=11,
    burst_width=30,
    edges_per_burst=60,
    seed=41,
    name="scale-base",
)


def scaled_config(factor: int) -> BurstyConfig:
    """The base recipe with vertices, edges, timestamps and bursts all
    multiplied by ``factor`` (burst density unchanged)."""
    if factor < 1:
        raise BenchmarkError(f"scale factor must be >= 1, got {factor}")
    return BurstyConfig(
        num_vertices=BASE.num_vertices * factor,
        background_edges=BASE.background_edges * factor,
        tmax=BASE.tmax * factor,
        exponent=BASE.exponent,
        num_bursts=BASE.num_bursts * factor,
        burst_size=BASE.burst_size,
        burst_width=BASE.burst_width,
        edges_per_burst=BASE.edges_per_burst,
        seed=BASE.seed,
        name=f"scale-{factor}x",
    )


@dataclass(frozen=True)
class ScalePoint:
    """One row of the scalability sweep."""

    factor: int
    num_edges: int
    tmax: int
    k: int
    enum_seconds: float | None
    otcd_seconds: float | None
    num_results: float

    def as_row(self) -> tuple:
        ratio: object
        if self.enum_seconds and self.otcd_seconds:
            ratio = f"{self.otcd_seconds / self.enum_seconds:.1f}x"
        else:
            ratio = "n/a"
        return (
            f"{self.factor}x", self.num_edges, self.tmax, self.k,
            self.enum_seconds, self.otcd_seconds, round(self.num_results),
            ratio,
        )


def run_scalability_sweep(
    factors: tuple[int, ...] = (1, 2, 4, 8),
    *,
    num_queries: int = 2,
    timeout: float = 30.0,
    seed: int = 0,
) -> list[ScalePoint]:
    """Run the sweep and return one :class:`ScalePoint` per factor."""
    points: list[ScalePoint] = []
    for factor in factors:
        graph = generate_bursty(scaled_config(factor))
        workload = build_workload(
            graph, f"scale-{factor}x", num_queries=num_queries, seed=seed
        )
        summaries = run_workload(
            graph, workload, ("enum", "otcd"), timeout=timeout
        )
        points.append(
            ScalePoint(
                factor=factor,
                num_edges=graph.num_edges,
                tmax=graph.tmax,
                k=workload.k,
                enum_seconds=summaries["enum"].mean_seconds,
                otcd_seconds=summaries["otcd"].mean_seconds,
                num_results=summaries["enum"].mean_results,
            )
        )
    return points


SCALE_HEADERS = (
    "scale", "|E|", "tmax", "k", "Enum+CT(s)", "OTCD(s)", "#results", "OTCD/Enum"
)
