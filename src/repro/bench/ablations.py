"""Ablation variants of the paper's design choices.

Three deliberately-degraded implementations quantify the contribution of
individual design decisions (DESIGN.md, ablations A-C):

* :func:`enumerate_resort_per_start` removes the doubly-linked-list
  maintenance of Algorithm 5: ``L_ts`` is rebuilt and re-sorted from
  scratch for every start time.  The output is identical; only the
  update cost changes (``O(|L_ts| log |L_ts|)`` per start vs the paper's
  ``O(|L \\ L'|)``).
* :func:`vct_by_recompute` removes the incremental fixpoint of the
  core-time maintenance: core times are recomputed with the decremental
  end-time scan independently for every start time.
* OTCD-without-pruning is already available as
  ``enumerate_otcd(..., use_pruning=False)``.
"""

from __future__ import annotations

from repro.core.coretime import (
    VertexCoreTimeIndex,
    compute_core_times,
    core_time_by_rescan,
)
from repro.core.results import EnumerationResult
from repro.core.windows import EdgeCoreSkyline, build_active_windows
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph


def enumerate_resort_per_start(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    skyline: EdgeCoreSkyline | None = None,
    collect: bool = True,
) -> EnumerationResult:
    """Enum without the linked list: rebuild the window order per start.

    Semantically equivalent to Algorithm 5 (verified by tests); used by
    the linked-list ablation benchmark.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)
    if skyline is None:
        skyline = compute_core_times(graph, k, ts_lo, ts_hi).ecs
        assert skyline is not None

    result = EnumerationResult("enum-resort", k, (ts_lo, ts_hi))
    windows = build_active_windows(skyline, ts_lo)
    if not windows:
        return result
    starts_at: dict[int, int] = {}
    for window in windows:
        starts_at[window.start] = starts_at.get(window.start, 0) + 1

    for current_ts in range(ts_lo, ts_hi + 1):
        if starts_at.get(current_ts, 0) == 0:
            continue  # Lemma 4: no core starts here.
        live = sorted(
            (w for w in windows if w.active <= current_ts <= w.start),
            key=lambda w: w.end,
        )
        accumulated: list[int] = []
        valid = False
        for position, window in enumerate(live):
            accumulated.append(window.edge_id)
            if window.start == current_ts:
                valid = True
            is_group_end = (
                position + 1 == len(live) or live[position + 1].end != window.end
            )
            if valid and is_group_end:
                result.record(current_ts, window.end, accumulated, collect)
    return result


def vct_by_recompute(
    graph: TemporalGraph, k: int, ts: int, te: int
) -> VertexCoreTimeIndex:
    """VCT built by re-running the decremental scan for every start.

    Output-equivalent to the incremental construction (tests assert it);
    cost is ``O(tmax * m)`` instead of ``O(|VCT| * deg_avg)``.
    """
    graph.check_window(ts, te)
    entries: list[list[tuple[int, int | None]]] = [
        [] for _ in range(graph.num_vertices)
    ]
    previous: dict[int, int | None] = {}
    for start in range(ts, te + 1):
        core_times = core_time_by_rescan(graph, k, start, te)
        for u in range(graph.num_vertices):
            current = core_times.get(u)
            had_before = u in previous
            if not had_before:
                if current is not None:
                    entries[u].append((start, current))
                    previous[u] = current
            elif current != previous[u]:
                entries[u].append((start, current))
                previous[u] = current
    return VertexCoreTimeIndex(entries, k, (ts, te))
