"""ASCII chart rendering for benchmark reports.

The paper's figures are log-scale bar and line charts.  Without a
plotting stack, the experiment drivers render the same data as text
tables; this module adds terminal-friendly log-scale bars and series so
a report shows the *shape* of each figure at a glance:

>>> print(log_bar_chart({"OTCD": 12.0, "Enum": 0.08}, unit="s"))
OTCD  |############################################            12 s
Enum  |#########                                             0.08 s
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_BAR_WIDTH = 48


def _format_value(value: float, unit: str) -> str:
    if value >= 1e5 or (value != 0 and value < 1e-3):
        rendered = f"{value:.2e}"
    elif value >= 100:
        rendered = f"{value:.0f}"
    else:
        rendered = f"{value:.3g}"
    return f"{rendered} {unit}".rstrip()


def log_bar_chart(
    values: Mapping[str, float | None],
    *,
    unit: str = "",
    width: int = _BAR_WIDTH,
) -> str:
    """Horizontal log-scale bars; ``None`` values render as DNF.

    The scale spans from one decade below the smallest positive value to
    the largest value, mirroring the paper's log axes.
    """
    positives = [v for v in values.values() if v is not None and v > 0]
    if not positives:
        return "\n".join(f"{name}  (no data)" for name in values)
    low = math.log10(min(positives)) - 1.0
    high = math.log10(max(positives))
    span = max(high - low, 1e-9)
    label_width = max(len(name) for name in values)
    lines = []
    for name, value in values.items():
        if value is None:
            lines.append(f"{name.ljust(label_width)}  |{'DNF'.ljust(width)}")
            continue
        if value <= 0:
            bar_len = 0
        else:
            bar_len = max(1, round((math.log10(value) - low) / span * width))
        bar = "#" * min(bar_len, width)
        lines.append(
            f"{name.ljust(label_width)}  |{bar.ljust(width)} "
            f"{_format_value(value, unit):>12}"
        )
    return "\n".join(lines)


def log_series_chart(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float | None]],
    *,
    unit: str = "",
    height: int = 12,
    column_width: int = 10,
) -> str:
    """A log-scale multi-series dot chart (one column per x label).

    Each series gets a marker character; DNF points are left blank and
    noted in the legend.  Designed for the paper's Figures 7/8-style
    four-point sweeps.
    """
    markers = "ox+*#@%&"
    positives = [
        v for values in series.values() for v in values if v is not None and v > 0
    ]
    if not positives:
        return "(no data)"
    low = math.log10(min(positives))
    high = math.log10(max(positives))
    span = max(high - low, 1e-9)

    grid = [[" "] * (len(x_labels) * column_width) for _ in range(height)]
    legend: list[str] = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        dnfs = [x_labels[i] for i, v in enumerate(values) if v is None]
        suffix = f" (DNF at {', '.join(dnfs)})" if dnfs else ""
        legend.append(f"  {marker} = {name}{suffix}")
        for i, value in enumerate(values):
            if value is None or value <= 0:
                continue
            row = round((math.log10(value) - low) / span * (height - 1))
            row = height - 1 - min(max(row, 0), height - 1)
            col = i * column_width + column_width // 2
            grid[row][col] = marker

    top = _format_value(10.0 ** high, unit)
    bottom = _format_value(10.0 ** low, unit)
    lines = [f"{top:>10} ^"]
    lines += ["           |" + "".join(row) for row in grid]
    lines.append(f"{bottom:>10} +" + "-" * (len(x_labels) * column_width))
    lines.append(
        "            "
        + "".join(label.center(column_width) for label in x_labels)
    )
    lines.extend(legend)
    return "\n".join(lines)
