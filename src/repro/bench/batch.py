"""Parallel batch query execution.

The paper measures single queries; deployments run *batches* (the
workload generator samples 100 ranges per parameter point).  Queries
against one prebuilt :class:`~repro.core.index.CoreIndex` are
independent and read-only, so they parallelise across processes.  Each
worker builds the index once (from the pickled graph shipped at pool
start) and answers its share of ranges.

The sequential path fetches its index through a
:class:`~repro.core.index.CoreIndexRegistry` (the process-wide default
unless one is passed), so consecutive batches against the same graph and
``k`` reuse the same index — the "build once, serve many ranges"
deployment shape.  :func:`run_engine_batch` routes every range through
the :class:`~repro.core.query.TimeRangeCoreQuery` façade instead, which
exercises any engine (``engine="index"`` by default).

For small workloads the pool start-up dwarfs the queries — callers
should batch at least a few dozen ranges or stay sequential; the
``processes=None`` default means "sequential", making parallelism a
deliberate opt-in.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.index import CoreIndex, CoreIndexRegistry, get_core_index
from repro.core.query import TimeRangeCoreQuery
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph

# Per-worker state, created once by the pool initializer.
_WORKER_INDEX: CoreIndex | None = None


@dataclass(frozen=True)
class BatchAnswer:
    """Counters of one query in a batch (results are not shipped back
    across the process boundary; re-run locally for materialised cores)."""

    time_range: tuple[int, int]
    num_results: int
    total_edges: int


def _init_worker(edges: tuple, k: int) -> None:
    global _WORKER_INDEX
    graph = TemporalGraph(list(edges))
    _WORKER_INDEX = CoreIndex(graph, k)


def _answer(time_range: tuple[int, int]) -> BatchAnswer:
    assert _WORKER_INDEX is not None, "worker not initialised"
    ts, te = time_range
    result = _WORKER_INDEX.query(ts, te, collect=False)
    return BatchAnswer(time_range, result.num_results, result.total_edges)


def run_query_batch(
    graph: TemporalGraph,
    k: int,
    ranges: list[tuple[int, int]],
    *,
    processes: int | None = None,
    registry: CoreIndexRegistry | None = None,
) -> list[BatchAnswer]:
    """Answer every range (count-only) against one shared index.

    ``processes=None`` runs sequentially in-process, fetching the index
    from ``registry`` (default: the process-wide registry) so repeated
    batches on the same graph hit the cache; ``processes >= 1`` fans out
    over a process pool, each worker holding its own index.  Answers come
    back in input order either way.

    Registry caching pins the graph (plus its compiled arrays and index)
    until LRU eviction, and makes a repeated batch skip the index build.
    When timing cold-start behaviour or working with graphs too large to
    keep resident, pass a dedicated ``CoreIndexRegistry`` and drop it
    afterwards.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if not ranges:
        return []
    for ts, te in ranges:
        graph.check_window(ts, te)

    if processes is None:
        index = get_core_index(graph, k, registry=registry)
        answers = []
        for ts, te in ranges:
            result = index.query(ts, te, collect=False)
            answers.append(BatchAnswer((ts, te), result.num_results, result.total_edges))
        return answers

    if processes < 1:
        raise InvalidParameterError(f"processes must be >= 1, got {processes}")
    edges = tuple(
        (graph.label_of(u), graph.label_of(v), t) for u, v, t in graph.edges
    )
    with ProcessPoolExecutor(
        max_workers=processes,
        initializer=_init_worker,
        initargs=(edges, k),
    ) as pool:
        return list(pool.map(_answer, ranges))


def run_engine_batch(
    graph: TemporalGraph,
    k: int,
    ranges: list[tuple[int, int]],
    *,
    engine: str = "index",
    registry: CoreIndexRegistry | None = None,
) -> list[BatchAnswer]:
    """Answer every range (count-only) through the query façade.

    Routes each range through :class:`TimeRangeCoreQuery` with the given
    engine — by default ``"index"``, the shared-index serving path — so a
    batch measures exactly what a query front-end would execute.  Answers
    come back in input order.
    """
    if not ranges:
        return []
    answers = []
    for ts, te in ranges:
        result = TimeRangeCoreQuery(
            graph,
            k,
            time_range=(ts, te),
            engine=engine,
            collect=False,
            registry=registry,
        ).run()
        answers.append(BatchAnswer((ts, te), result.num_results, result.total_edges))
    return answers
