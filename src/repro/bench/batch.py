"""Parallel and mixed batch query execution.

The paper measures single queries; deployments run *batches* (the
workload generator samples 100 ranges per parameter point).  Queries
against one prebuilt :class:`~repro.core.index.CoreIndex` are
independent and read-only, so they parallelise across processes: the
``processes=`` path hands the planned batch to a
:class:`~repro.serve.parallel.WorkerPool` whose workers attach to a
shared :class:`~repro.store.index_store.IndexStore` by mmap — the graph
and index are persisted once by the parent and *opened* (never pickled,
never rebuilt) by every worker.

The sequential path fetches its index through a
:class:`~repro.core.index.CoreIndexRegistry` (the process-wide default
unless one is passed), so consecutive batches against the same graph and
``k`` reuse the same index — the "build once, serve many ranges"
deployment shape — and answers every range of a ``(graph, k)`` group
through :meth:`CoreIndex.query_batch
<repro.core.index.CoreIndex.query_batch>`, i.e. through the serving
planner (:mod:`repro.serve`): identical ranges are deduped, overlapping
ranges merge into covering windows enumerated once and sliced per
query, and one vectorised ``searchsorted`` sweep locates all covering
windows in the shared start-sorted skyline view.  An
:class:`~repro.store.index_store.IndexStore` may be supplied so cache
misses warm-start from disk before computing.
:func:`run_engine_batch` routes every range through the
:class:`~repro.core.query.TimeRangeCoreQuery` façade instead, which
exercises any engine (``engine="index"`` by default).

Real batch traffic also mixes *many* ``k`` values and graphs:
:func:`run_mixed_batch` takes heterogeneous ``(graph, k, range)``
queries, groups them by graph, and resolves each graph's distinct ``k``
values in one :meth:`~repro.core.index.CoreIndexRegistry.get_many` call
— store fallthrough first, then a single shared decremental scan for
everything still missing — before answering in input order.

For small workloads the pool start-up dwarfs the queries — callers
should batch at least a few dozen ranges or stay sequential; the
``processes=None`` default means "sequential", making parallelism a
deliberate opt-in.  (Earlier revisions shipped the full edge list into
each worker and rebuilt the index per worker; that initializer is gone
— the store-backed pool is strictly cheaper and answers identically.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.index import CoreIndexRegistry, DEFAULT_REGISTRY, get_core_index
from repro.core.query import TimeRangeCoreQuery
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.serve.executor import execute_plan
from repro.serve.planner import QueryRequest, plan_queries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.parallel import WorkerPool
    from repro.store.index_store import IndexStore


@dataclass(frozen=True)
class BatchAnswer:
    """Counters of one query in a batch (results are not shipped back
    across the process boundary; re-run locally for materialised cores).

    ``k`` is populated by the mixed-batch runner, where it varies per
    query; the fixed-``k`` runners leave it ``None``.
    """

    time_range: tuple[int, int]
    num_results: int
    total_edges: int
    k: int | None = None


def run_query_batch(
    graph: TemporalGraph,
    k: int,
    ranges: list[tuple[int, int]],
    *,
    processes: int | None = None,
    parallel: "WorkerPool | None" = None,
    registry: CoreIndexRegistry | None = None,
    store: "IndexStore | None" = None,
) -> list[BatchAnswer]:
    """Answer every range (count-only) against one shared index.

    ``processes=None`` runs sequentially in-process, fetching the index
    from ``registry`` (default: the process-wide registry) so repeated
    batches on the same graph hit the cache; ``processes >= 1`` fans the
    planned covering windows out over a store-backed
    :class:`~repro.serve.parallel.WorkerPool` — the index is persisted
    once into an ephemeral store and every worker attaches to it by
    mmap (no per-worker build, no pickled edges).  Answers come back in
    input order either way.  Callers that serve many batches should
    keep their own pool and pass it as ``parallel`` instead, so the
    worker processes and their mmap attachments persist across calls
    (``processes`` is then ignored).

    ``store`` makes the sequential path's cache miss fall through to the
    on-disk index store (fingerprint match) before computing, so a batch
    served by a freshly booted process warm-starts from the last
    prebuild instead of paying Algorithm 2.  With ``processes=``, it
    also becomes the pool's shared store (workers attach to it
    directly) instead of an ephemeral temp directory.

    Registry caching pins the graph (plus its compiled arrays and index)
    until LRU eviction, and makes a repeated batch skip the index build.
    When timing cold-start behaviour or working with graphs too large to
    keep resident, pass a dedicated ``CoreIndexRegistry`` and drop it
    afterwards.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if processes is not None and processes < 1:
        raise InvalidParameterError(f"processes must be >= 1, got {processes}")
    if not ranges:
        return []
    for ts, te in ranges:
        graph.check_window(ts, te)

    index = get_core_index(graph, k, registry=registry, store=store)
    if parallel is None and processes is not None:
        from repro.serve.parallel import open_pool

        with open_pool(processes, store=store) as pool:
            results = index.query_batch(ranges, parallel=pool)
    else:
        results = index.query_batch(ranges, parallel=parallel)
    return [
        BatchAnswer((ts, te), result.num_results, result.total_edges)
        for (ts, te), result in zip(ranges, results)
    ]


def run_mixed_batch(
    queries: list[tuple[TemporalGraph, int, tuple[int, int]]],
    *,
    registry: CoreIndexRegistry | None = None,
    store: "IndexStore | None" = None,
    parallel: "WorkerPool | None" = None,
) -> list[BatchAnswer]:
    """Answer heterogeneous ``(graph, k, (ts, te))`` queries (count-only).

    The mixed-``k`` serving path: queries are grouped by graph
    (identity), each graph's distinct ``k`` values are resolved in one
    :meth:`CoreIndexRegistry.get_many` call — registry cache, then
    ``store`` fallthrough, then **one** shared decremental scan for all
    still-missing ``k`` — and every ``(graph, k)`` group's ranges are
    answered together through :meth:`CoreIndex.query_batch
    <repro.core.index.CoreIndex.query_batch>` (one vectorised cut sweep
    over the group's shared sorted skyline view).  Answers come back in
    input order, each carrying its ``k``.

    A batch mixing four ``k`` values against a cold graph therefore
    costs one multi-``k`` build, not four Algorithm-2 runs; with a
    prebuilt store it costs zero.  ``parallel`` fans the plan's
    covering windows — across *all* its ``(graph, k)`` groups — out
    over a :class:`~repro.serve.parallel.WorkerPool`.
    """
    if not queries:
        return []
    for graph, k, (ts, te) in queries:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        graph.check_window(ts, te)

    target = registry if registry is not None else DEFAULT_REGISTRY
    graphs: dict[int, TemporalGraph] = {}
    ks_by_graph: dict[int, list[int]] = {}
    for graph, k, _range in queries:
        gid = id(graph)
        graphs[gid] = graph
        ks = ks_by_graph.setdefault(gid, [])
        if k not in ks:
            ks.append(k)
    # Prefetch: one get_many per graph keeps the shared multi-k build
    # (and the store fallthrough); the executor below then resolves
    # every plan group straight from the registry cache.
    for gid, ks in ks_by_graph.items():
        target.get_many(graphs[gid], ks, store=store)

    plan = plan_queries(
        [QueryRequest(graph, k, ts, te) for graph, k, (ts, te) in queries],
        engine="index",
    )
    results = execute_plan(plan, registry=target, store=store, parallel=parallel)
    return [
        BatchAnswer(query[2], result.num_results, result.total_edges, query[1])
        for query, result in zip(queries, results)
    ]


def run_engine_batch(
    graph: TemporalGraph,
    k: int,
    ranges: list[tuple[int, int]],
    *,
    engine: str = "index",
    registry: CoreIndexRegistry | None = None,
) -> list[BatchAnswer]:
    """Answer every range (count-only) through the query façade.

    Routes each range through :class:`TimeRangeCoreQuery` with the given
    engine — by default ``"index"``, the shared-index serving path — so a
    batch measures exactly what a query front-end would execute.  Answers
    come back in input order.
    """
    if not ranges:
        return []
    answers = []
    for ts, te in ranges:
        result = TimeRangeCoreQuery(
            graph,
            k,
            time_range=(ts, te),
            engine=engine,
            collect=False,
            registry=registry,
        ).run()
        answers.append(BatchAnswer((ts, te), result.num_results, result.total_edges))
    return answers
