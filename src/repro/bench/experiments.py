"""Per-figure experiment drivers — regenerate every table and figure.

Run from the command line::

    python -m repro.bench.experiments table3
    python -m repro.bench.experiments fig6 --profile full
    python -m repro.bench.experiments all

Each driver returns the printed report, so the benchmark suite and
EXPERIMENTS.md use exactly the same code path.  The ``quick`` profile
(default) keeps the full sweep within minutes on a laptop; ``full`` uses
more queries and a longer per-query time limit.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass

from repro.bench.charts import log_bar_chart, log_series_chart
from repro.bench.harness import FIG6_ENGINES, run_dataset_point
from repro.bench.memory import format_bytes
from repro.bench.reporting import format_table
from repro.core.coretime import compute_core_times
from repro.datasets.paper_example import (
    PAPER_ECS_K2,
    PAPER_VCT_K2,
    paper_example_graph,
)
from repro.datasets.registry import (
    ALL_DATASETS,
    FIG4_DATASETS,
    VARIED_DATASETS,
    load_dataset,
    paper_stats,
)
from repro.datasets.stats import compute_stats
from repro.errors import BenchmarkError

K_FRACTIONS = (0.1, 0.2, 0.3, 0.4)
RANGE_FRACTIONS = (0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class BenchProfile:
    """Sweep intensity: how many queries per point, per-query time limit."""

    name: str
    num_queries: int
    timeout: float
    seed: int = 0

    @classmethod
    def quick(cls) -> "BenchProfile":
        return cls("quick", num_queries=2, timeout=10.0)

    @classmethod
    def full(cls) -> "BenchProfile":
        return cls("full", num_queries=5, timeout=60.0)

    @classmethod
    def from_env(cls) -> "BenchProfile":
        """Profile selected by ``REPRO_BENCH_PROFILE`` (quick | full)."""
        name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
        return cls.full() if name == "full" else cls.quick()


# ----------------------------------------------------------------------
# Tables I-III
# ----------------------------------------------------------------------


def experiment_table1() -> str:
    """Table I: the VCT index of the running example (k = 2)."""
    graph = paper_example_graph()
    vct = compute_core_times(graph, 2).vct
    rows = []
    for name in sorted(PAPER_VCT_K2, key=lambda s: int(s[1:])):
        ours = tuple(vct.entries_of(graph.id_of(name)))
        published = PAPER_VCT_K2[name]
        rows.append((name, _render_entries(ours), _render_entries(published),
                     "yes" if ours == published else "NO"))
    return format_table(
        ("vertex", "computed", "published (corrected)", "match"),
        rows,
        title="Table I - vertex core time index of the example graph, k=2",
    )


def experiment_table2() -> str:
    """Table II: the edge core window skyline of the running example."""
    graph = paper_example_graph()
    result = compute_core_times(graph, 2)
    assert result.ecs is not None
    rows = []
    for eid, (u, v, t) in enumerate(graph.edges):
        lu, lv = graph.label_of(u), graph.label_of(v)
        published = PAPER_ECS_K2.get((lu, lv, t)) or PAPER_ECS_K2.get((lv, lu, t))
        ours = result.ecs.windows_of(eid)
        rows.append((f"({lu}, {lv}, {t})", _render_windows(ours),
                     _render_windows(published or ()),
                     "yes" if ours == published else "NO"))
    return format_table(
        ("edge", "computed", "published", "match"),
        rows,
        title="Table II - edge core window skyline of the example graph, k=2",
    )


def experiment_table3() -> str:
    """Table III: dataset statistics, paper originals vs generated."""
    rows = []
    for name in ALL_DATASETS:
        stats = compute_stats(load_dataset(name))
        paper = paper_stats(name)
        rows.append(
            (name, paper.num_vertices, paper.num_edges, paper.tmax, paper.kmax,
             stats.num_vertices, stats.num_edges, stats.tmax, stats.kmax)
        )
    return format_table(
        ("ds", "paper|V|", "paper|E|", "paper tmax", "paper kmax",
         "gen|V|", "gen|E|", "gen tmax", "gen kmax"),
        rows,
        title="Table III - datasets (paper originals vs scaled synthetic stand-ins)",
    )


# ----------------------------------------------------------------------
# Figures 4, 6, 9, 12 (per-dataset at default parameters)
# ----------------------------------------------------------------------


def experiment_fig4(profile: BenchProfile | None = None) -> str:
    """Fig 4: |VCT|, |VCT|*deg_avg and |R| at default parameters."""
    profile = profile or BenchProfile.from_env()
    rows = []
    for name in FIG4_DATASETS:
        stats = compute_stats(load_dataset(name))
        _, summaries = run_dataset_point(
            name,
            num_queries=profile.num_queries,
            engines=("coretime", "enum"),
            timeout=profile.timeout,
            seed=profile.seed,
        )
        coretime = summaries["coretime"].records
        vct_size = sum(r.vct_size for r in coretime) / len(coretime)
        product = vct_size * stats.avg_degree
        result_size = summaries["enum"].mean_total_edges
        ratio = result_size / product if product else float("nan")
        rows.append((name, round(vct_size), round(product), round(result_size),
                     f"{ratio:.1f}x"))
    return format_table(
        ("ds", "|VCT|", "|VCT|*deg_avg", "|R|", "|R| / product"),
        rows,
        title="Fig 4 - index size vs result size (default k=30% kmax, range=10% tmax)",
    )


def experiment_fig6(profile: BenchProfile | None = None) -> str:
    """Fig 6: average running time of every algorithm on every dataset."""
    profile = profile or BenchProfile.from_env()
    rows = []
    for name in ALL_DATASETS:
        _, summaries = run_dataset_point(
            name,
            num_queries=profile.num_queries,
            engines=FIG6_ENGINES,
            timeout=profile.timeout,
            seed=profile.seed,
        )
        rows.append(
            (name,
             summaries["otcd"].mean_seconds,
             summaries["coretime"].mean_seconds,
             summaries["enumbase"].mean_seconds,
             summaries["enum"].mean_seconds,
             f"{summaries['otcd'].num_dnf}/{summaries['otcd'].num_queries}")
        )
    table = format_table(
        ("ds", "OTCD(s)", "CoreTime(s)", "EnumBase(s)", "Enum(s)", "OTCD DNF"),
        rows,
        title=(
            "Fig 6 - average running time, default parameters "
            f"({profile.num_queries} queries, {profile.timeout:.0f}s limit)"
        ),
    )
    # Log-scale bars for the largest many-timestamp dataset, the shape
    # the paper's Figure 6 emphasises.
    wt = next((row for row in rows if row[0] == "WT"), None)
    if wt is not None:
        chart = log_bar_chart(
            {"OTCD": wt[1], "CoreTime": wt[2], "EnumBase": wt[3], "Enum": wt[4]},
            unit="s",
        )
        table += "\n\nWT dataset, log scale:\n" + chart
    return table


def experiment_fig9(profile: BenchProfile | None = None) -> str:
    """Fig 9: average number of temporal k-cores per dataset."""
    profile = profile or BenchProfile.from_env()
    rows = []
    for name in ALL_DATASETS:
        workload, summaries = run_dataset_point(
            name,
            num_queries=profile.num_queries,
            engines=("enum",),
            timeout=profile.timeout,
            seed=profile.seed,
        )
        enum = summaries["enum"]
        rows.append((name, workload.k, round(enum.mean_results),
                     round(enum.mean_total_edges)))
    return format_table(
        ("ds", "k", "avg #results", "avg |R| (edges)"),
        rows,
        title="Fig 9 - number of temporal k-cores at default parameters",
    )


def experiment_fig12(profile: BenchProfile | None = None) -> str:
    """Fig 12: peak memory of each algorithm at default parameters."""
    profile = profile or BenchProfile.from_env()
    rows = []
    for name in ALL_DATASETS:
        _, summaries = run_dataset_point(
            name,
            num_queries=profile.num_queries,
            engines=("otcd", "enumbase", "enum"),
            timeout=profile.timeout,
            seed=profile.seed,
            measure_memory=True,
        )
        rows.append(
            (name,
             format_bytes(summaries["otcd"].mean_peak_bytes),
             format_bytes(summaries["enumbase"].mean_peak_bytes),
             format_bytes(summaries["enum"].mean_peak_bytes))
        )
    return format_table(
        ("ds", "OTCD peak", "EnumBase peak", "Enum peak"),
        rows,
        title="Fig 12 - peak traced memory per algorithm (streaming outputs)",
    )


# ----------------------------------------------------------------------
# Figures 7, 8, 10, 11 (parameter sweeps on the four varied datasets)
# ----------------------------------------------------------------------


def _sweep(
    profile: BenchProfile,
    *,
    vary: str,
    metric: str,
    title: str,
) -> str:
    """Shared driver for the k / range sweeps (Figs 7, 8, 10, 11)."""
    fractions = K_FRACTIONS if vary == "k" else RANGE_FRACTIONS
    engines = ("enum", "enumbase", "otcd") if metric == "time" else ("enum",)
    rows = []
    for name in VARIED_DATASETS:
        for fraction in fractions:
            kwargs = dict(
                num_queries=profile.num_queries,
                engines=engines,
                timeout=profile.timeout,
                seed=profile.seed,
            )
            if vary == "k":
                kwargs["k_fraction"] = fraction
            else:
                kwargs["range_fraction"] = fraction
            label = f"{int(fraction * 100)}%"
            try:
                workload, summaries = run_dataset_point(name, **kwargs)
            except BenchmarkError:
                # No window of this width contains a k-core at all; the
                # paper's admissibility guarantee cannot be met for this
                # parameter point on the scaled dataset.
                rows.append((name, label, "-", "-") + ("n/a",) * (3 if metric == "time" else 2))
                continue
            if metric == "time":
                rows.append(
                    (name, label, workload.k, workload.width,
                     summaries["enum"].mean_seconds,
                     summaries["enumbase"].mean_seconds,
                     summaries["otcd"].mean_seconds)
                )
            else:
                enum = summaries["enum"]
                rows.append(
                    (name, label, workload.k, workload.width,
                     round(enum.mean_results), round(enum.mean_total_edges))
                )
    if metric == "time":
        headers = ("ds", vary, "k", "width", "Enum+CT(s)", "EnumBase+CT(s)", "OTCD(s)")
    else:
        headers = ("ds", vary, "k", "width", "#results", "|R| (edges)")
    table = format_table(headers, rows, title=title)
    if metric == "time":
        # Enum-vs-OTCD series for the largest many-timestamp dataset.
        wt_rows = [row for row in rows if row[0] == "WT" and row[2] != "-"]
        if wt_rows:
            chart = log_series_chart(
                [row[1] for row in wt_rows],
                {
                    "Enum+CT": [row[4] for row in wt_rows],
                    "OTCD": [row[6] for row in wt_rows],
                },
                unit="s",
            )
            table += "\n\nWT dataset, log scale:\n" + chart
    return table


def experiment_fig7(profile: BenchProfile | None = None) -> str:
    """Fig 7: running time vs k (10-40% of kmax)."""
    profile = profile or BenchProfile.from_env()
    return _sweep(profile, vary="k", metric="time",
                  title="Fig 7 - running time varying k")


def experiment_fig8(profile: BenchProfile | None = None) -> str:
    """Fig 8: running time vs query range width (5-40% of tmax)."""
    profile = profile or BenchProfile.from_env()
    return _sweep(profile, vary="range", metric="time",
                  title="Fig 8 - running time varying query time range")


def experiment_fig10(profile: BenchProfile | None = None) -> str:
    """Fig 10: number of results vs k."""
    profile = profile or BenchProfile.from_env()
    return _sweep(profile, vary="k", metric="results",
                  title="Fig 10 - number of temporal k-cores varying k")


def experiment_fig11(profile: BenchProfile | None = None) -> str:
    """Fig 11: number of results vs query range width."""
    profile = profile or BenchProfile.from_env()
    return _sweep(profile, vary="range", metric="results",
                  title="Fig 11 - number of temporal k-cores varying range")


# ----------------------------------------------------------------------


def _render_entries(entries) -> str:
    return " ".join(
        f"[{s},{'inf' if c is None else c}]" for s, c in entries
    )


def _render_windows(windows) -> str:
    return " ".join(f"[{a},{b}]" for a, b in windows)


EXPERIMENTS = {
    "table1": lambda profile: experiment_table1(),
    "table2": lambda profile: experiment_table2(),
    "table3": lambda profile: experiment_table3(),
    "fig4": experiment_fig4,
    "fig6": experiment_fig6,
    "fig7": experiment_fig7,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "fig10": experiment_fig10,
    "fig11": experiment_fig11,
    "fig12": experiment_fig12,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--profile", choices=("quick", "full"), default=None,
        help="sweep intensity (default: REPRO_BENCH_PROFILE or quick)",
    )
    args = parser.parse_args(argv)
    if args.profile == "full":
        profile = BenchProfile.full()
    elif args.profile == "quick":
        profile = BenchProfile.quick()
    else:
        profile = BenchProfile.from_env()

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name](profile))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
