"""Benchmark harness: workloads, timing/memory measurement, experiments."""

from repro.bench.batch import (
    BatchAnswer,
    run_engine_batch,
    run_mixed_batch,
    run_query_batch,
)
from repro.bench.harness import (
    EngineSummary,
    FIG6_ENGINES,
    QueryRecord,
    run_dataset_point,
    run_workload,
)
from repro.bench.memory import format_bytes, measure_peak_memory
from repro.bench.reporting import format_table, orders_of_magnitude, speedup
from repro.bench.workloads import (
    Workload,
    build_workload,
    range_has_core,
    sample_query_ranges,
)

__all__ = [
    "BatchAnswer",
    "EngineSummary",
    "FIG6_ENGINES",
    "QueryRecord",
    "Workload",
    "build_workload",
    "format_bytes",
    "format_table",
    "measure_peak_memory",
    "orders_of_magnitude",
    "range_has_core",
    "run_dataset_point",
    "run_engine_batch",
    "run_mixed_batch",
    "run_query_batch",
    "run_workload",
    "sample_query_ranges",
    "speedup",
]
