"""Plain-text reporting in the shape of the paper's figures.

Every experiment driver renders its data as an aligned text table whose
rows/series match what the corresponding paper figure plots, so a reader
can compare shapes (who wins, by what factor, where crossovers fall)
without a plotting stack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def format_cell(value: object) -> str:
    """Render one table cell: scientific notation for wide-range floats."""
    if value is None:
        return "DNF"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Align a table of heterogeneous cells into monospaced text."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def speedup(baseline: float | None, candidate: float | None) -> str:
    """Human-readable speedup factor of candidate vs baseline."""
    if baseline is None:
        return "baseline DNF"
    if candidate is None:
        return "candidate DNF"
    if candidate <= 0:
        return "inf"
    return f"{baseline / candidate:.1f}x"


def orders_of_magnitude(small: float, large: float) -> float:
    """``log10(large / small)`` guarded against zeros."""
    if small <= 0 or large <= 0:
        return math.nan
    return math.log10(large / small)
