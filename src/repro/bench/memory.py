"""Peak-memory measurement for the Figure 12 experiment.

The paper reports maximum resident memory of each algorithm.  In-process,
``tracemalloc`` gives the analogous quantity for Python allocations: the
*peak traced allocation* during the algorithm run, excluding the baseline
(graph + workload) that exists before the run starts.  Rankings between
algorithms — the claim Figure 12 makes — carry over directly.
"""

from __future__ import annotations

import tracemalloc
from collections.abc import Callable
from typing import Any, TypeVar

T = TypeVar("T")


def measure_peak_memory(fn: Callable[[], T]) -> tuple[T, int]:
    """Run ``fn`` and return ``(result, peak_allocated_bytes)``.

    The peak is measured relative to the allocation level at call time,
    so pre-existing structures do not count.  Nesting is not supported
    (tracemalloc is process-global); the harness serialises callers.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    return result, max(0, peak - baseline)


def format_bytes(num_bytes: float) -> str:
    """Human-readable bytes (binary units, two significant decimals)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
