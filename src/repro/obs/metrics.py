"""A thread-safe, process-wide metrics registry.

The serving stack grew its telemetry organically: the index registry,
the store, the worker pool and the planner each kept ad-hoc dicts and
bare ints.  This module gives them one schema — named *instruments*
(:class:`Counter`, :class:`Gauge`, fixed-bucket :class:`Histogram`)
living in a :class:`MetricsRegistry`, addressed by dotted-free
Prometheus-style names and frozen label tuples:

* **Registration is idempotent** — ``registry.counter(name, ...)``
  returns the existing instrument on repeat calls (and raises when the
  name is re-declared with a different kind, label set or buckets), so
  any component can declare what it needs without coordination.
* **The hot path is O(1)** — a bound child (one label combination)
  increments a float in a dict slot under the instrument's lock; no
  string formatting, no allocation beyond the first bind.  Components
  bind their children once at construction and hold them.
* **Snapshots are plain data** — :meth:`MetricsRegistry.snapshot`
  returns a nested dict (JSON-safe), rendered by
  :meth:`~MetricsRegistry.render_json` or Prometheus text exposition
  by :meth:`~MetricsRegistry.render_prometheus`.  Each instrument is
  snapshotted under its own lock, so a snapshot taken mid-write is
  internally consistent per instrument (histogram bucket counts always
  sum to the observation count).
* **Worker deltas merge** — :meth:`MetricsRegistry.merge_snapshot`
  folds counter and histogram values from another registry's snapshot
  in (gauges are overwritten), the shape the
  :class:`~repro.serve.parallel.WorkerPool` uses to aggregate
  per-worker metrics back into the parent process.

The process-wide default registry (:func:`get_registry`) is what the
library's built-in instrumentation writes to; components accept a
``metrics=`` constructor argument for isolation.  Latency measurement
(the ``perf_counter`` calls around plan/execute/enumerate boundaries)
can be switched off process-wide with :func:`set_timing_enabled` — the
instrumented code then pays a single branch per boundary.
"""

from __future__ import annotations

import itertools
import json
import threading
from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.errors import InvalidParameterError

#: Default latency buckets (seconds): 100 µs .. 30 s, roughly log-spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_INF = float("inf")

#: HTTP ``Content-Type`` of :meth:`MetricsRegistry.render_prometheus`
#: output — what a ``GET /metrics`` endpoint should answer with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _frozen_labels(
    labelnames: Sequence[str], args: tuple, kwargs: dict
) -> tuple[str, ...]:
    """Validate and freeze a label-value tuple for a bind call."""
    if args and kwargs:
        raise InvalidParameterError(
            "pass label values either positionally or by name, not both"
        )
    if kwargs:
        if set(kwargs) != set(labelnames):
            raise InvalidParameterError(
                f"expected labels {tuple(labelnames)}, got {tuple(kwargs)}"
            )
        args = tuple(kwargs[name] for name in labelnames)
    if len(args) != len(labelnames):
        raise InvalidParameterError(
            f"expected {len(labelnames)} label value(s) "
            f"{tuple(labelnames)}, got {len(args)}"
        )
    return tuple(str(value) for value in args)


class _Instrument:
    """Shared machinery: name, labels, child binding, per-instrument lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def signature(self) -> tuple:
        """What a re-registration must match to be considered the same."""
        return (self.kind, self.labelnames)

    def labels(self, *args, **kwargs):
        """The bound child for one label-value combination (created once)."""
        key = _frozen_labels(self.labelnames, args, kwargs)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child(key)
                self._children[key] = child
        return child

    def _unlabeled(self):
        if self.labelnames:
            raise InvalidParameterError(
                f"{self.name} declares labels {self.labelnames}; "
                "bind them with .labels(...) first"
            )
        return self.labels()

    def _make_child(self, key: tuple[str, ...]):  # pragma: no cover - abstract
        raise NotImplementedError

    def items(self) -> list[tuple[tuple[str, ...], object]]:
        """``(label_values, child)`` pairs, point-in-time."""
        with self._lock:
            return list(self._children.items())

    def snapshot_values(self) -> list[dict]:
        """Plain-data samples for every child.

        The child list is pinned under the instrument lock; each child
        then samples itself under that same lock (so a histogram's
        bucket counts always sum to its observation count even while
        writers are active).
        """
        with self._lock:
            children = sorted(self._children.items())
        return [
            dict(
                (("labels", dict(zip(self.labelnames, key))),),
                **child._sample(),  # type: ignore[attr-defined]
            )
            for key, child in children
        ]

    def snapshot(self) -> dict:
        out: dict = {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "values": self.snapshot_values(),
        }
        if isinstance(self, Histogram):
            out["buckets"] = list(self.buckets)
        return out


class _CounterChild:
    """One labelled counter series; ``inc`` is the O(1) hot path."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counters only go up; got inc({amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> dict:
        return {"value": self._value}


class Counter(_Instrument):
    """A monotonically increasing count (events, items, bytes)."""

    kind = "counter"

    def _make_child(self, key):
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        """Unlabeled value (labelled instruments: use ``.labels().value``)."""
        return self._unlabeled().value

    def total(self) -> float:
        """Sum over every child — the all-labels aggregate."""
        with self._lock:
            return sum(
                child._value for child in self._children.values()
            )


class _GaugeChild:
    """One labelled gauge series (set/inc/dec)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> dict:
        return {"value": self._value}


class Gauge(_Instrument):
    """A value that can go up and down (sizes, capacities, in-flight)."""

    kind = "gauge"

    def _make_child(self, key):
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabeled().dec(amount)

    @property
    def value(self) -> float:
        return self._unlabeled().value


class _HistogramChild:
    """One labelled histogram series: fixed buckets + sum + count."""

    __slots__ = ("_lock", "_buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]):
        self._lock = lock
        self._buckets = buckets
        # One slot per finite bucket plus the +Inf overflow slot.
        self._counts = [0] * (len(buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        # Prometheus `le` semantics: bucket i counts value <= buckets[i],
        # so a value landing exactly on a boundary belongs to that bucket.
        position = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts (Prometheus style), +Inf last."""
        with self._lock:
            counts = list(self._counts)
        out: list[int] = []
        running = 0
        for count in counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        A bucket-resolution estimate (the exposition-format consumer's
        view); ``inf`` when the quantile falls in the overflow bucket,
        ``0.0`` on an empty series.
        """
        cumulative = self.cumulative()
        total = cumulative[-1]
        if not total:
            return 0.0
        threshold = q * total
        for upper, running in zip(self._buckets + (_INF,), cumulative):
            if running >= threshold:
                return upper
        return _INF  # pragma: no cover - the +Inf row always reaches total

    def _sample(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, s = self._count, self._sum
        cumulative: list[int] = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return {"count": total, "sum": s, "bucket_counts": cumulative}


class Histogram(_Instrument):
    """Fixed-bucket latency/size distribution (cumulative on export)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        uppers = tuple(float(b) for b in buckets)
        if not uppers or list(uppers) != sorted(set(uppers)):
            raise InvalidParameterError(
                "histogram buckets must be non-empty, strictly ascending"
            )
        if uppers and uppers[-1] == _INF:
            uppers = uppers[:-1]  # +Inf is implicit
        self.buckets = uppers

    def signature(self) -> tuple:
        return (self.kind, self.labelnames, self.buckets)

    def _make_child(self, key):
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)

    @property
    def count(self) -> int:
        return self._unlabeled().count

    @property
    def sum(self) -> float:
        return self._unlabeled().sum


class MetricsRegistry:
    """A named collection of instruments with one consistent export.

    Thread-safe: instrument creation holds the registry lock, value
    updates hold the owning instrument's lock.  The registry itself is
    process-local — worker processes keep their own and ship snapshot
    deltas to the parent (see :meth:`merge_snapshot`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _register(self, cls, name: str, help: str, labelnames, **kwargs):
        candidate = cls(name, help, labelnames, **kwargs)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                self._instruments[name] = candidate
                return candidate
        if existing.signature() != candidate.signature():
            raise InvalidParameterError(
                f"instrument {name!r} already registered as "
                f"{existing.signature()}, cannot re-register as "
                f"{candidate.signature()}"
            )
        return existing

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get-or-create a counter (idempotent; kind/labels must match)."""
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get-or-create a gauge (idempotent; kind/labels must match)."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get-or-create a histogram (kind/labels/buckets must match)."""
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Instrument | None:
        """The registered instrument called ``name``, if any."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Every instrument's current values as one plain nested dict.

        ``{name: {"kind", "help", "labelnames", "values": [...]}}`` with
        per-child samples (``value`` for counters/gauges; ``count`` /
        ``sum`` / cumulative ``bucket_counts`` for histograms, whose
        instrument entry also lists the finite bucket ``buckets``).
        JSON-safe throughout.  Each instrument is read under its own
        lock, so every sample is internally consistent even while
        writers are active.
        """
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in instruments}

    def render_json(self, *, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format (v0.0.4)."""
        lines: list[str] = []
        snap = self.snapshot()
        for name, inst in snap.items():
            if inst["help"]:
                lines.append(f"# HELP {name} {_escape_help(inst['help'])}")
            lines.append(f"# TYPE {name} {inst['kind']}")
            for sample in inst["values"]:
                labels = sample["labels"]
                if inst["kind"] == "histogram":
                    uppers = [*inst["buckets"], "+Inf"]
                    for upper, cum in zip(uppers, sample["bucket_counts"]):
                        le = upper if isinstance(upper, str) else repr(upper)
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels({**labels, 'le': le})} {cum}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} {sample['sum']}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {sample['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_render_number(sample['value'])}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram series are *added* (count, sum and
        per-bucket counts), gauges are overwritten — the semantics a
        parent process wants when aggregating worker deltas.  Unknown
        instruments are created on the fly with the snapshot's declared
        kind, labels and buckets.
        """
        for name, inst in snap.items():
            kind = inst.get("kind")
            labelnames = tuple(inst.get("labelnames", ()))
            if kind == "counter":
                target = self.counter(name, inst.get("help", ""), labelnames)
                for sample in inst["values"]:
                    key = tuple(sample["labels"][ln] for ln in labelnames)
                    target.labels(*key).inc(sample["value"])
            elif kind == "gauge":
                target = self.gauge(name, inst.get("help", ""), labelnames)
                for sample in inst["values"]:
                    key = tuple(sample["labels"][ln] for ln in labelnames)
                    target.labels(*key).set(sample["value"])
            elif kind == "histogram":
                target = self.histogram(
                    name,
                    inst.get("help", ""),
                    labelnames,
                    buckets=inst.get("buckets", DEFAULT_BUCKETS),
                )
                for sample in inst["values"]:
                    key = tuple(sample["labels"][ln] for ln in labelnames)
                    child = target.labels(*key)
                    cumulative = sample["bucket_counts"]
                    with child._lock:
                        previous = 0
                        for i, cum in enumerate(cumulative):
                            child._counts[i] += cum - previous
                            previous = cum
                        child._count += sample["count"]
                        child._sum += sample["sum"]
            else:  # pragma: no cover - foreign snapshot kinds are skipped
                continue


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _render_number(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


# ----------------------------------------------------------------------
# Process-wide default registry and the timing switch
# ----------------------------------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry()

#: Whether latency instrumentation takes clock readings.  Counters stay
#: on either way (they replace pre-existing bookkeeping); this switch
#: only gates the ``now()`` calls and histogram observations around the
#: plan/execute/enumerate/sink boundaries, so the disabled hot path
#: pays one branch.
_TIMING_ENABLED = True


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all built-in instruments use."""
    return _DEFAULT_REGISTRY


def timing_enabled() -> bool:
    """Whether latency histograms/spans currently take clock readings."""
    return _TIMING_ENABLED


def set_timing_enabled(enabled: bool) -> bool:
    """Switch latency measurement on or off; returns the previous state."""
    global _TIMING_ENABLED
    previous = _TIMING_ENABLED
    _TIMING_ENABLED = bool(enabled)
    return previous


_INSTANCE_COUNTERS: dict[str, "itertools.count[int]"] = {}
_INSTANCE_LOCK = threading.Lock()


def next_instance(prefix: str) -> str:
    """A process-unique instance label value, ``"<prefix>-<n>"``.

    Components that can exist several times per process (index
    registries, stores, pools) label their series with one of these so
    each instance's counters stay distinguishable in a shared registry
    — and so a component's legacy ``stats()`` dict can be a faithful
    view over exactly its own children.
    """
    with _INSTANCE_LOCK:
        counter = _INSTANCE_COUNTERS.get(prefix)
        if counter is None:
            counter = _INSTANCE_COUNTERS[prefix] = itertools.count(1)
        return f"{prefix}-{next(counter)}"
