"""Unified observability: metrics registry, span tracing, timing.

Three small modules with one job each:

* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms; Prometheus-text and JSON
  export) that the registry/store/pool/planner/executor instruments
  write to.
* :mod:`repro.obs.trace` — per-query span trees (:class:`Trace`)
  threaded through ``plan → execute → sink``; :data:`NULL_TRACE` is
  the one-branch disabled default.
* :mod:`repro.obs.timing` — the monotonic clock (:func:`now`) plus
  :class:`Stopwatch` / :class:`Deadline` / :func:`time_call`, absorbed
  from ``repro.utils.timer``.

``repro.obs.report()`` renders the default registry as a one-shot text
report.  See ``docs/OBSERVABILITY.md`` for the instrument catalogue
and label conventions.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    next_instance,
    set_timing_enabled,
    timing_enabled,
)
from repro.obs.report import report
from repro.obs.timing import Deadline, Stopwatch, now, time_call
from repro.obs.trace import NULL_TRACE, Span, Trace

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "next_instance",
    "set_timing_enabled",
    "timing_enabled",
    "report",
    "Deadline",
    "Stopwatch",
    "now",
    "time_call",
    "NULL_TRACE",
    "Span",
    "Trace",
]
