"""One-shot human-readable report over a metrics registry.

:func:`report` renders everything a registry knows — counters and
gauges grouped by instrument, histograms as count/mean/quantile rows —
as plain text for a terminal.  It is what the CLI ``stats`` subcommand
prints and what a REPL user calls after a batch::

    >>> import repro.obs as obs
    >>> print(obs.report())            # doctest: +SKIP
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, get_registry

_INF = float("inf")


def _fmt_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def _fmt_seconds(value: float) -> str:
    if value == _INF:
        return "inf"
    if value >= 1.0:
        return f"{value:.3g}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3g}ms"
    return f"{value * 1e6:.3g}us"


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return "(total)"
    return "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}"


def report(registry: MetricsRegistry | None = None) -> str:
    """Render ``registry`` (default: the process registry) as text.

    One section per instrument kind; histogram rows estimate p50/p95
    at bucket resolution from the cumulative counts.
    """
    registry = registry if registry is not None else get_registry()
    snap = registry.snapshot()
    if not snap:
        return "no instruments registered\n"

    by_kind: dict[str, list[tuple[str, dict]]] = {}
    for name, inst in snap.items():
        by_kind.setdefault(inst["kind"], []).append((name, inst))

    lines: list[str] = []
    for kind, title in (
        ("counter", "counters"),
        ("gauge", "gauges"),
        ("histogram", "latency histograms"),
    ):
        instruments = by_kind.get(kind)
        if not instruments:
            continue
        lines.append(f"== {title} ==")
        for name, inst in instruments:
            if inst["help"]:
                lines.append(f"{name}  # {inst['help']}")
            else:
                lines.append(name)
            if kind == "histogram":
                uppers = [float(b) for b in inst["buckets"]] + [_INF]
                for sample in inst["values"]:
                    count = sample["count"]
                    if not count:
                        continue
                    mean = sample["sum"] / count
                    p50 = _bucket_quantile(uppers, sample["bucket_counts"], 0.50)
                    p95 = _bucket_quantile(uppers, sample["bucket_counts"], 0.95)
                    lines.append(
                        f"  {_fmt_labels(sample['labels']):<40} "
                        f"count={count} mean={_fmt_seconds(mean)} "
                        f"p50<={_fmt_seconds(p50)} p95<={_fmt_seconds(p95)}"
                    )
            else:
                for sample in inst["values"]:
                    lines.append(
                        f"  {_fmt_labels(sample['labels']):<40} "
                        f"{_fmt_value(sample['value'])}"
                    )
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def _bucket_quantile(uppers, cumulative, q: float) -> float:
    total = cumulative[-1]
    if not total:
        return 0.0
    threshold = q * total
    for upper, running in zip(uppers, cumulative):
        if running >= threshold:
            return upper
    return _INF  # pragma: no cover - the +Inf row always reaches total
