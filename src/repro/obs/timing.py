"""Monotonic-clock timing primitives for the observability layer.

Every duration the library measures — span tracing, latency
histograms, deadlines, benchmark laps — goes through :func:`now`, a
single process-wide monotonic clock (``time.perf_counter``: monotonic,
highest available resolution, immune to wall-clock steps).  Nothing in
the library times work against ``time.time``.

This module absorbed ``repro.utils.timer`` (PR 7); the old import path
re-exports these names with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

#: The process-wide monotonic clock, in fractional seconds.  All
#: intervals in the library are differences of this clock.
now: Callable[[], float] = time.perf_counter


@dataclass
class Stopwatch:
    """A restartable monotonic stopwatch with named laps.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> sw.lap("sum")
    >>> sw.elapsed >= 0.0
    True
    """

    _started_at: float | None = None
    _accumulated: float = 0.0
    laps: dict[str, float] = field(default_factory=dict)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = now()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self._accumulated += now() - self._started_at
        self._started_at = None
        return self._accumulated

    def lap(self, name: str) -> None:
        """Record the elapsed time so far under ``name`` without stopping."""
        self.laps[name] = self.elapsed

    @property
    def elapsed(self) -> float:
        total = self._accumulated
        if self._started_at is not None:
            total += now() - self._started_at
        return total

    def reset(self) -> None:
        self._started_at = None
        self._accumulated = 0.0
        self.laps.clear()


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[Any, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    t0 = now()
    result = fn(*args, **kwargs)
    return result, now() - t0


class Deadline:
    """A soft deadline used to emulate the paper's 6-hour time limit.

    Algorithms poll :meth:`expired` at coarse-grained checkpoints (once per
    start time, typically) and abort with a DNF marker instead of raising.

    ``cancelled`` optionally threads an external abort signal through the
    same machinery: a zero-argument callable polled by :meth:`expired`
    alongside the clock.  This is how the serving daemon turns a client
    disconnect into a prompt enumeration abort — the executor needs no
    second code path, it already polls the deadline per start time.  The
    callable must be cheap and thread-safe to *read* (a ``bool`` flag,
    an ``Event.is_set``); it is polled from whichever thread runs the
    walk.  Cancellation does not travel across process boundaries: a
    :class:`~repro.serve.parallel.WorkerPool` chunk carries only the
    remaining seconds.
    """

    def __init__(
        self,
        seconds: float | None,
        *,
        cancelled: Callable[[], bool] | None = None,
    ):
        self._seconds = seconds
        self._cancelled = cancelled
        self._t0 = now()

    def expired(self) -> bool:
        if self._cancelled is not None and self._cancelled():
            return True
        if self._seconds is None:
            return False
        return now() - self._t0 > self._seconds

    @property
    def remaining(self) -> float | None:
        if self._seconds is None:
            return None
        return max(0.0, self._seconds - (now() - self._t0))
