"""Lightweight per-query span tracing.

Where the :mod:`metrics <repro.obs.metrics>` registry answers "how is
the process doing in aggregate", a trace answers "where did *this*
batch spend its time": a tree of named, monotonic-clock-timed spans —
``query_batch`` wrapping ``plan`` and ``execute``, ``execute`` wrapping
one ``enumerate`` span per covering window and ``sink_flush`` around
router fan-out — threaded through the serving stack on the
:class:`~repro.serve.planner.QueryPlan`.

Design points:

* **A trace is opt-in and local.**  Callers pass ``trace=Trace()`` to
  :meth:`CoreIndex.query_batch <repro.core.index.CoreIndex.query_batch>`
  (or attach one to a plan); nothing is global, concurrent batches get
  independent trees.
* **The disabled path pays one branch.**  Instrumented code holds
  :data:`NULL_TRACE` by default — its :meth:`~Trace.span` returns a
  shared inert context manager whose enter/exit do nothing and read no
  clock.
* **Spans nest by enter order.**  ``Trace.span`` is a context manager;
  the enclosing span at ``__enter__`` time becomes the parent.  A
  per-trace stack tracks the open chain, so nesting needs no explicit
  parent plumbing.  (A trace belongs to one thread of execution — the
  worker-pool path traces parent-side dispatch, not inside workers.)
* **Export is NDJSON.**  One JSON object per finished span —
  ``name``, ``start``/``duration`` on the trace-relative monotonic
  clock, ``parent``/``depth``, free-form ``attrs`` — written by
  :meth:`Trace.write_ndjson`, consumable with ``jq`` or a line reader.
"""

from __future__ import annotations

import json
import threading
from typing import Any, TextIO

from repro.obs.timing import now


class Span:
    """One timed region of a :class:`Trace`.

    Use as a context manager (``with trace.span("plan"):``).  Spans are
    identified by a trace-unique integer id; ``parent`` is the id of
    the span open when this one started, or ``None`` at the root.
    """

    __slots__ = (
        "trace", "span_id", "name", "parent", "depth",
        "start", "duration", "attrs",
    )

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        name: str,
        parent: int | None,
        depth: int,
        attrs: dict[str, Any],
    ):
        self.trace = trace
        self.span_id = span_id
        self.name = name
        self.parent = parent
        self.depth = depth
        self.attrs = attrs
        self.start: float | None = None
        self.duration: float | None = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open span (counts, keys, outcomes)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.trace._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.trace._exit(self)

    def to_event(self) -> dict:
        """The span as a plain JSON-safe trace event."""
        event = {
            "span": self.span_id,
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        return event


class _NullSpan:
    """The shared inert span: enter/exit do nothing, read no clock."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Trace:
    """A per-query tree of timed spans.

    Thread-safe for the bookkeeping (finished-span list, id counter),
    but the *open-span stack* models one thread of execution — share a
    trace across threads only for already-finished reads.

    >>> trace = Trace("demo")
    >>> with trace.span("outer"):
    ...     with trace.span("inner", k=3):
    ...         pass
    >>> [e["name"] for e in trace.to_events()]
    ['inner', 'outer']
    """

    enabled = True

    def __init__(self, name: str = "trace"):
        self.name = name
        self._t0 = now()
        self._lock = threading.Lock()
        self._next_id = 0
        self._stack: list[Span] = []
        self._finished: list[Span] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; entering it makes the currently open span its parent."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, span_id, name, parent=None, depth=0, attrs=attrs)

    # -- context-manager protocol used by Span ------------------------

    def _enter(self, span: Span) -> None:
        with self._lock:
            if self._stack:
                span.parent = self._stack[-1].span_id
                span.depth = self._stack[-1].depth + 1
            self._stack.append(span)
        span.start = now() - self._t0

    def _exit(self, span: Span) -> None:
        end = now() - self._t0
        span.duration = end - (span.start or 0.0)
        with self._lock:
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            elif span in self._stack:  # pragma: no cover - misnested exit
                self._stack.remove(span)
            self._finished.append(span)

    # -- reading ------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def find(self, name: str) -> list[Span]:
        """Finished spans called ``name``."""
        return [span for span in self.spans() if span.name == name]

    def to_events(self) -> list[dict]:
        """Finished spans as plain JSON-safe event dicts."""
        return [span.to_event() for span in self.spans()]

    def write_ndjson(self, stream: TextIO) -> int:
        """Write one JSON object per finished span; returns the count."""
        events = self.to_events()
        for event in events:
            stream.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)

    def render(self) -> str:
        """A human-readable indented tree of the finished spans."""
        spans = self.spans()
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            children.setdefault(span.parent, []).append(span)
        for siblings in children.values():
            siblings.sort(key=lambda s: s.start or 0.0)
        lines: list[str] = [f"trace {self.name}"]

        def walk(parent: int | None, indent: int) -> None:
            for span in children.get(parent, ()):
                attrs = (
                    " " + " ".join(
                        f"{k}={v}" for k, v in sorted(span.attrs.items())
                    )
                    if span.attrs
                    else ""
                )
                lines.append(
                    f"{'  ' * indent}{span.name:<12} "
                    f"{(span.duration or 0.0) * 1e3:9.3f} ms{attrs}"
                )
                walk(span.span_id, indent + 1)

        walk(None, 1)
        return "\n".join(lines)


class _NullTrace(Trace):
    """The disabled default: ``span()`` returns the shared inert span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__("null")

    def span(self, name: str, **attrs: Any):  # type: ignore[override]
        return _NULL_SPAN


#: The process-wide no-op trace instrumented code defaults to.  Testing
#: ``trace.enabled`` (or just calling ``trace.span``) on this object is
#: the single branch the disabled hot path pays.
NULL_TRACE: Trace = _NullTrace()
