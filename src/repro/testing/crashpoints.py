"""Named crash/fault points, triggered by environment variables.

The durability layer threads :func:`crashpoint` calls through every
instant where dying is interesting — between a WAL record's write and
its fsync, between a blob's temp write and its rename, and so on.  Each
point has a **name** from the central :data:`CRASHPOINTS` catalogue
below, so the crash campaign can enumerate every registered point and
prove the recovery invariants hold at each one.

Triggering is environment-driven so a *subprocess* can be told to die
without any code change::

    REPRO_CRASHPOINT=wal.append.post-write.pre-fsync

kills the process with ``SIGKILL`` the first time that point is
reached.  An optional ``:N`` suffix crashes on the N-th hit instead
(``wal.append.post-fsync:5`` survives four appends and dies mid-fifth),
which lets one workload exercise a point deep into its life.

:func:`faultpoint` is the non-lethal sibling: under
``REPRO_FAULTPOINT=<name>[:N]`` the named call raises ``OSError``
(``ENOSPC``) from the N-th hit **onward** — how the tests simulate a
disk that stops accepting writes, driving the daemon's read-only
degradation without needing an actually-full filesystem.

Cost when inactive: both triggers parse their environment variable once
at import, so a disabled hook is one module-global ``is None`` check —
safe on hot paths.  (Subprocess campaigns set the variable before the
child's interpreter starts; in-process tests may call :func:`reload`
after monkeypatching ``os.environ``.)
"""

from __future__ import annotations

import errno
import os
import signal

#: Environment variable selecting the crash point (``name`` or ``name:N``).
CRASHPOINT_ENV = "REPRO_CRASHPOINT"

#: Environment variable selecting the fault point (``name`` or ``name:N``).
FAULTPOINT_ENV = "REPRO_FAULTPOINT"

#: Every crash point the durability layer threads, with the instant it
#: marks.  The campaign iterates this catalogue; adding a point here and
#: a ``crashpoint()`` call in the code automatically adds it to the
#: matrix.
CRASHPOINTS: dict[str, str] = {
    "wal.append.pre-write": "an append accepted but no bytes written yet",
    "wal.append.post-write.pre-fsync": "record bytes written, not yet durable",
    "wal.append.post-fsync": "record durable, acknowledgement not yet sent",
    "wal.rotate.post-seal": "old segment sealed (fsynced), new one not created",
    "wal.rotate.post-create": "new segment created, directory not yet fsynced",
    "wal.open.post-truncate": "torn tail truncated during open, before use",
    "wal.trim.mid": "snapshot-covered segment removal half done",
    "blob.post-temp.pre-rename": "blob temp file complete, final name absent",
    "blob.post-rename": "blob renamed into place, directory not yet fsynced",
    "manifest.post-temp.pre-rename": "manifest temp complete, final name stale",
    "manifest.post-rename": "manifest renamed, directory not yet fsynced",
    "snapshot.pre-graph": "snapshot refresh done, nothing persisted yet",
    "snapshot.post-graph.pre-indexes": "graph+LSN committed, indexes absent",
    "snapshot.post-indexes.pre-trim": "snapshot complete, old WAL not trimmed",
    "fold.merge": "incremental fold mid-flight: sub-span computed, merge pending",
}

#: Every fault point (non-lethal ``OSError`` injection sites).
FAULTPOINTS: dict[str, str] = {
    "wal.append.write": "WAL record write fails (disk full)",
    "wal.append.fsync": "WAL fsync fails (I/O error)",
}


def registered_crashpoints() -> tuple[str, ...]:
    """Every crash point name, in catalogue order."""
    return tuple(CRASHPOINTS)


def registered_faultpoints() -> tuple[str, ...]:
    """Every fault point name, in catalogue order."""
    return tuple(FAULTPOINTS)


def _parse(spec: str | None) -> tuple[str, int] | None:
    if not spec:
        return None
    name, _, count = spec.partition(":")
    try:
        nth = int(count) if count else 1
    except ValueError:
        raise ValueError(f"bad hit count in {spec!r} (want name or name:N)") from None
    return name, max(1, nth)


_crash_target: tuple[str, int] | None = None
_fault_target: tuple[str, int] | None = None
_hits: dict[str, int] = {}


def reload() -> None:
    """Re-read both environment variables (for in-process tests)."""
    global _crash_target, _fault_target
    _crash_target = _parse(os.environ.get(CRASHPOINT_ENV))
    _fault_target = _parse(os.environ.get(FAULTPOINT_ENV))
    if _crash_target is not None and _crash_target[0] not in CRASHPOINTS:
        raise ValueError(
            f"unknown crash point {_crash_target[0]!r} "
            f"(know {sorted(CRASHPOINTS)})"
        )
    if _fault_target is not None and _fault_target[0] not in FAULTPOINTS:
        raise ValueError(
            f"unknown fault point {_fault_target[0]!r} "
            f"(know {sorted(FAULTPOINTS)})"
        )
    _hits.clear()


reload()


def crashpoint(name: str) -> None:
    """Die here (SIGKILL, no cleanup) if this point is the armed one.

    ``name`` must be in :data:`CRASHPOINTS` — an unregistered name is a
    programming error, raised eagerly so the catalogue can never drift
    from the code.  With nothing armed this is one global check.
    """
    if _crash_target is None:
        if name not in CRASHPOINTS:
            raise ValueError(f"unregistered crash point {name!r}")
        return
    if name not in CRASHPOINTS:
        raise ValueError(f"unregistered crash point {name!r}")
    target, nth = _crash_target
    if name != target:
        return
    _hits[name] = _hits.get(name, 0) + 1
    if _hits[name] >= nth:
        # SIGKILL ourselves rather than os._exit: the campaign asserts
        # the child died by signal, exactly like a machine crash — no
        # atexit hooks, no flushing, no finally blocks.
        os.kill(os.getpid(), signal.SIGKILL)


def faultpoint(name: str) -> None:
    """Raise ``OSError(ENOSPC)`` here from the N-th hit onward, if armed.

    Unlike :func:`crashpoint` the failure *persists* once it starts —
    a full disk does not heal between writes — which is what drives a
    daemon into (and keeps it in) read-only mode.
    """
    if _fault_target is None:
        if name not in FAULTPOINTS:
            raise ValueError(f"unregistered fault point {name!r}")
        return
    if name not in FAULTPOINTS:
        raise ValueError(f"unregistered fault point {name!r}")
    target, nth = _fault_target
    if name != target:
        return
    _hits[name] = _hits.get(name, 0) + 1
    if _hits[name] >= nth:
        raise OSError(errno.ENOSPC, f"injected fault at {name}")
