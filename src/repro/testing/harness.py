"""The subprocess crash campaign: kill a child at a point, audit the wreck.

The campaign's shape, shared by the test suite and the CI smoke job:

1. spawn :mod:`repro.testing.crash_driver` as a subprocess with
   ``REPRO_CRASHPOINT=<name>[:N]`` armed — the child appends a
   deterministic edge workload into a WAL-backed store, printing one
   ``ACK`` line *after* each append is durable, snapshotting
   periodically, and is SIGKILLed by its own crash point mid-operation;
2. reopen the wrecked store in *this* process via
   :meth:`IndexStore.recover <repro.store.index_store.IndexStore.recover>`
   and audit the recovery invariants
   (:func:`audit_recovery`): every acknowledged append survived, no
   phantom edges appeared, prefix order held, the recovered state
   answers queries identically to the seed oracle
   (:func:`repro.core.enumerate_ref.enumerate_temporal_kcores_ref`),
   and ``fsck`` has nothing left to quarantine afterwards.

The workload (:func:`campaign_edges`) is seeded and pure, so the
parent can regenerate exactly what the child was sending and check the
recovered store against it without any side channel beyond the ACK
lines on the child's stdout.
"""

from __future__ import annotations

import os
import pathlib
import random
import signal
import subprocess
import sys
from dataclasses import dataclass, field

from repro.core.enumerate_ref import enumerate_temporal_kcores_ref
from repro.graph.temporal_graph import TemporalGraph
from repro.store.fsck import FsckReport, scrub_store
from repro.store.index_store import IndexStore
from repro.testing.crashpoints import CRASHPOINT_ENV

#: The store key every campaign child writes under.
CAMPAIGN_KEY = "campaign"

#: Small segments so one campaign run exercises rotation and trim.
CAMPAIGN_SEGMENT_BYTES = 512


def _canon(
    seq: list[tuple[str, str, int]]
) -> list[tuple[int, tuple[str, str]]]:
    """Order/orientation-canonical form of an edge sequence.

    :class:`~repro.graph.temporal_graph.TemporalGraph` canonicalises
    per-edge endpoint orientation and reorders edges sharing a
    timestamp, so a snapshot round trip is *multiset*-equal to what was
    appended, not tuple-equal.  Comparisons sort by ``(t, endpoints)``
    with endpoints themselves sorted — exactly the identity an
    undirected temporal edge has.
    """
    return sorted((t, tuple(sorted((str(u), str(v))))) for u, v, t in seq)


def campaign_edges(
    seed: int, count: int, *, nodes: int = 12
) -> list[tuple[str, str, int]]:
    """The deterministic append workload: ``count`` ordered edge events.

    Timestamps are non-decreasing with occasional repeats (multiple
    events per instant), labels drawn from a small vertex pool so cores
    actually form.  Pure function of ``(seed, count, nodes)`` — parent
    and child regenerate the identical list independently.
    """
    rng = random.Random(seed)
    edges: list[tuple[str, str, int]] = []
    t = 1
    while len(edges) < count:
        if rng.random() < 0.6:
            t += rng.randint(0, 2)
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u == v:
            v = (v + 1) % nodes
        edges.append((f"n{u}", f"n{v}", t))
    return edges


@dataclass
class CrashOutcome:
    """What one campaign child run left behind."""

    crashpoint: str
    returncode: int
    acked: list[int] = field(default_factory=list)  # 0-based workload indexes
    stdout: str = ""
    stderr: str = ""

    @property
    def crashed(self) -> bool:
        """Whether the child died by SIGKILL (vs exiting normally)."""
        return self.returncode == -signal.SIGKILL


def run_crash_child(
    store_root: str | os.PathLike[str],
    crashpoint: str,
    *,
    seed: int = 11,
    count: int = 40,
    snapshot_every: int = 10,
    ks: tuple[int, ...] = (2,),
    timeout: float = 120.0,
) -> CrashOutcome:
    """Run one ingestion child armed to die at ``crashpoint``.

    The child appends :func:`campaign_edges` one at a time (so every
    append crosses every ``wal.append.*`` instant), snapshots every
    ``snapshot_every`` appends (crossing the ``snapshot.*`` and
    ``manifest.*``/``blob.*`` instants) and prints ``ACK <index>``
    after each durable acknowledgement.  Arm-counts deep enough into
    the run (``name:N``) are the caller's choice via ``crashpoint``
    syntax.
    """
    env = dict(os.environ)
    env[CRASHPOINT_ENV] = crashpoint
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.testing.crash_driver",
            "--store", os.fspath(store_root),
            "--key", CAMPAIGN_KEY,
            "--seed", str(seed),
            "--count", str(count),
            "--snapshot-every", str(snapshot_every),
            "--ks", ",".join(str(k) for k in ks),
            "--segment-bytes", str(CAMPAIGN_SEGMENT_BYTES),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    acked = [
        int(line.split()[1])
        for line in proc.stdout.splitlines()
        if line.startswith("ACK ")
    ]
    return CrashOutcome(
        crashpoint=crashpoint.split(":")[0],
        returncode=proc.returncode,
        acked=acked,
        stdout=proc.stdout,
        stderr=proc.stderr,
    )


@dataclass
class RecoveryAudit:
    """The parent-side verdict on a wrecked store."""

    outcome: CrashOutcome
    recovered_count: int
    fsck_before: FsckReport
    fsck_after: FsckReport
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def audit_recovery(
    store_root: str | os.PathLike[str],
    outcome: CrashOutcome,
    *,
    seed: int = 11,
    count: int = 40,
    ks: tuple[int, ...] = (2,),
) -> RecoveryAudit:
    """Recover the wrecked store and check every campaign invariant.

    * the store reopens (recovery itself must not raise);
    * **durability** — every ACKed append is present after recovery;
    * **atomicity** — nothing *beyond* the sent prefix appears, and the
      recovered events are exactly a prefix of the workload (an
      unacknowledged in-flight append may legitimately survive — it
      was written, just not acknowledged — but nothing may be skipped
      or reordered);
    * **correctness** — a graph built from the recovered edges answers
      the seed oracle's enumeration for every ``k`` in ``ks``;
    * **scrub** — ``fsck`` repairs whatever the crash tore (quarantine
      or repair, never delete), and a second pass right after is clean.

    Each violated invariant appends one line to ``problems``; the audit
    never asserts — callers (pytest, the CI smoke script) decide how to
    fail.
    """
    problems: list[str] = []
    workload = campaign_edges(seed, count)

    # fsck first — with repair on, exactly what an operator would run —
    # then recover from the repaired store.
    fsck_before = scrub_store(store_root, repair=True)
    for issue in fsck_before.issues:
        if issue.action not in ("quarantined", "repaired", "reported"):
            problems.append(f"fsck took unexpected action: {issue}")

    store = IndexStore(store_root)
    try:
        recovery = store.recover(CAMPAIGN_KEY,
                                 segment_bytes=CAMPAIGN_SEGMENT_BYTES)
    except Exception as exc:  # noqa: BLE001 - audit reports, never raises
        return RecoveryAudit(
            outcome=outcome,
            recovered_count=0,
            fsck_before=fsck_before,
            fsck_after=fsck_before,
            problems=[f"store failed to reopen after crash: {exc!r}"],
        )
    if recovery.wal is not None:
        recovery.wal.close()

    recovered: list[tuple[str, str, int]] = []
    if recovery.graph is not None:
        recovered.extend(
            (recovery.graph.label_of(u), recovery.graph.label_of(v),
             recovery.graph.raw_time_of(t))
            for u, v, t in recovery.graph.edges
        )
    recovered.extend((e.u, e.v, e.t) for e in recovery.events)

    # Durability: every acknowledged append must be present.
    acked_hwm = max(outcome.acked, default=-1)
    if len(recovered) < acked_hwm + 1:
        problems.append(
            f"lost acknowledged appends: {acked_hwm + 1} were ACKed, "
            f"only {len(recovered)} recovered"
        )
    # Atomicity/prefix: recovered must be exactly the sent prefix (as a
    # multiset of undirected temporal edges — snapshots canonicalise
    # orientation and same-instant order), nothing skipped, nothing
    # phantom.
    if len(recovered) > len(workload):
        problems.append(
            f"phantom edges: recovered {len(recovered)}, sent at most "
            f"{len(workload)}"
        )
    elif _canon(recovered) != _canon(workload[: len(recovered)]):
        problems.append(
            "recovered events are not a prefix of the sent workload"
        )

    # Oracle equivalence: the recovered state answers like a graph
    # built directly from the recovered prefix.
    if recovered and not problems:
        expected_graph = TemporalGraph(workload[: len(recovered)])
        got_graph = TemporalGraph(recovered)
        for k in ks:
            want = enumerate_temporal_kcores_ref(expected_graph, k)
            got = enumerate_temporal_kcores_ref(got_graph, k)
            # Edge *ids* are graph-local (the two graphs may order their
            # edge arrays differently); compare cores by their labelled
            # edge multisets instead.
            want_keys = sorted(
                (c.tti, _canon(c.edge_triples(expected_graph)))
                for c in want.cores
            )
            got_keys = sorted(
                (c.tti, _canon(c.edge_triples(got_graph)))
                for c in got.cores
            )
            if want_keys != got_keys:
                problems.append(
                    f"recovered graph answers differ from oracle at k={k}"
                )

    fsck_after = scrub_store(store_root, repair=True)
    real_after = [
        issue for issue in fsck_after.issues if issue.kind != "orphan"
    ]
    if real_after:
        problems.append(
            f"fsck not clean after repair pass: {real_after}"
        )

    return RecoveryAudit(
        outcome=outcome,
        recovered_count=len(recovered),
        fsck_before=fsck_before,
        fsck_after=fsck_after,
        problems=problems,
    )


def run_campaign_point(
    store_root: str | os.PathLike[str],
    crashpoint: str,
    *,
    seed: int = 11,
    count: int = 40,
    snapshot_every: int = 10,
    ks: tuple[int, ...] = (2,),
) -> RecoveryAudit:
    """One full campaign cycle: crash a child at ``crashpoint``, audit.

    A child that ran to completion without reaching the armed point
    (e.g. an arm-count deeper than the workload) is audited all the
    same — a clean run must satisfy every invariant too.
    """
    outcome = run_crash_child(
        store_root,
        crashpoint,
        seed=seed,
        count=count,
        snapshot_every=snapshot_every,
        ks=ks,
    )
    audit = audit_recovery(store_root, outcome, seed=seed, count=count, ks=ks)
    if outcome.returncode not in (0, -signal.SIGKILL):
        audit.problems.append(
            f"child died abnormally (returncode {outcome.returncode}): "
            f"{outcome.stderr[-2000:]}"
        )
    return audit


def campaign_store(tmp_root: str | os.PathLike[str]) -> pathlib.Path:
    """A fresh store directory for one campaign cycle."""
    root = pathlib.Path(tmp_root) / "store"
    root.mkdir(parents=True, exist_ok=True)
    return root
