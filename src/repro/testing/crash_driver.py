"""The crash-campaign ingestion child: ``python -m repro.testing.crash_driver``.

Appends the deterministic :func:`~repro.testing.harness.campaign_edges`
workload into a WAL-backed :class:`~repro.core.maintenance.StreamingCoreService`
one edge at a time, printing ``ACK <index>`` (flushed) only *after*
each append's write-ahead record is durable, and snapshotting every
``--snapshot-every`` appends.  Run with ``REPRO_CRASHPOINT`` armed it
SIGKILLs itself mid-operation; the parent harness then audits what the
wreck recovers to.

The ACK line is the durability contract under test: everything printed
must survive the crash, anything not printed may vanish (or survive,
if the crash landed between the write and the acknowledgement — but
never partially).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.maintenance import StreamingCoreService
from repro.store.index_store import IndexStore
from repro.testing.harness import campaign_edges


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", required=True)
    parser.add_argument("--key", default="campaign")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--count", type=int, default=40)
    parser.add_argument("--snapshot-every", type=int, default=10)
    parser.add_argument("--ks", default="2")
    parser.add_argument("--segment-bytes", type=int, default=512)
    args = parser.parse_args(argv)

    ks = tuple(int(k) for k in args.ks.split(","))
    store = IndexStore(args.store)
    # Resume from whatever a previous (crashed) run left behind, exactly
    # like a restarted daemon would — the workload index picks up at the
    # number of edges already recovered.
    if store.has_wal(args.key) or args.key in store.keys():
        service = StreamingCoreService.restore(
            store, ks, name=args.key, wal=True,
            wal_segment_bytes=args.segment_bytes,
        )
    else:
        wal = store.wal(args.key, segment_bytes=args.segment_bytes)
        service = StreamingCoreService(ks, wal=wal)

    workload = campaign_edges(args.seed, args.count)
    start = service.num_edges
    for index in range(start, len(workload)):
        u, v, t = workload[index]
        # Refresh at strict timestamp boundaries: the pending batch then
        # starts past the graph's last instant, so the incremental
        # delta-fold engages (instead of its boundary-tie fallback) and
        # the campaign deterministically reaches the ``fold.merge``
        # crash point.  A fold is pure memory — a crash inside it loses
        # nothing durable, which is exactly what the audit checks.
        if (
            service.num_pending > 0
            and index > 0
            and t > workload[index - 1][2]
        ):
            service.refresh(mode="incremental")
            print(f"FOLD {index}", flush=True)
        service.append(u, v, t)
        # The append returned: its WAL record is fsynced.  This line is
        # the acknowledgement the campaign holds us to.
        print(f"ACK {index}", flush=True)
        done = index + 1
        if args.snapshot_every and done % args.snapshot_every == 0:
            service.snapshot(store, name=args.key)
            print(f"SNAPSHOT {done}", flush=True)
    if service.wal is not None:
        service.wal.close()
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
