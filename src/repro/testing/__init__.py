"""Reusable fault-injection harnesses for durability testing.

This package ships *with* the library (not under ``tests/``) because the
production modules cooperate with it: the write-ahead log, the blob
writer, the manifest writer and the streaming snapshot path all call
:func:`repro.testing.crashpoints.crashpoint` at the instants where a
crash is interesting.  In normal operation those calls are a single
module-global read; under ``REPRO_CRASHPOINT=<name>`` the named call
SIGKILLs the process mid-operation — which is how the crash campaign
(:mod:`repro.testing.harness`) proves that no acknowledged append can
be lost and no crash instant can leave an unopenable store.

* :mod:`repro.testing.crashpoints` — the named crash/fault point
  catalogue and the env-var-driven triggers;
* :mod:`repro.testing.harness` — subprocess campaign utilities: run an
  ingestion child that dies at a chosen point, collect what it
  acknowledged before dying;
* :mod:`repro.testing.crash_driver` — the ingestion child itself
  (``python -m repro.testing.crash_driver``).
"""

from repro.testing.crashpoints import (
    CRASHPOINT_ENV,
    FAULTPOINT_ENV,
    crashpoint,
    faultpoint,
    registered_crashpoints,
    registered_faultpoints,
)

__all__ = [
    "CRASHPOINT_ENV",
    "FAULTPOINT_ENV",
    "crashpoint",
    "faultpoint",
    "registered_crashpoints",
    "registered_faultpoints",
]
