"""Structural invariant checks for temporal graphs and query results.

These checks are deliberately slow and explicit: they are the referees the
test suite (and cautious users) call to validate fast-path results.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import snapshot_k_core
from repro.graph.temporal_graph import TemporalGraph


def check_graph_invariants(graph: TemporalGraph) -> None:
    """Assert the normalisation invariants of a temporal graph.

    * edges sorted by timestamp;
    * canonical endpoint order ``u < v``;
    * timestamps dense in ``1..tmax`` (every value used at least once when
      the graph was built with ``normalize_time=True``);
    * the per-time index agrees with the edge list.
    """
    previous_t = 0
    for eid, (u, v, t) in enumerate(graph.edges):
        if u >= v:
            raise AssertionError(f"edge {eid} not canonical: ({u}, {v})")
        if t < previous_t:
            raise AssertionError(f"edge {eid} breaks timestamp order")
        previous_t = t
    used = set()
    for t in range(1, graph.tmax + 1):
        for eid in graph.edge_ids_at(t):
            if graph.edges[eid].t != t:
                raise AssertionError(f"time index mismatch at t={t}, edge {eid}")
            used.add(eid)
    if len(used) != graph.num_edges:
        raise AssertionError("time index does not cover every edge")


def is_k_core_subgraph(
    graph: TemporalGraph, edge_ids: set[int], k: int, ts: int, te: int
) -> bool:
    """True iff the given temporal edges form a subgraph of ``G[ts, te]``
    whose every vertex has at least ``k`` distinct neighbours.

    This checks *cohesion* only; maximality is checked separately by
    comparing against the peeled core of the window.
    """
    neighbours: dict[int, set[int]] = {}
    for eid in edge_ids:
        u, v, t = graph.edges[eid]
        if t < ts or t > te:
            return False
        neighbours.setdefault(u, set()).add(v)
        neighbours.setdefault(v, set()).add(u)
    return all(len(ns) >= k for ns in neighbours.values())


def exact_core_edge_ids(graph: TemporalGraph, k: int, ts: int, te: int) -> set[int]:
    """Edge ids of the temporal k-core of window ``[ts, te]`` by peeling.

    The reference implementation of Definition 2 used as ground truth.
    """
    snapshot = Snapshot.from_graph(graph, ts, te)
    members = snapshot_k_core(snapshot, k)
    return set(snapshot.induced_temporal_edge_ids(members))


def tightest_time_interval(graph: TemporalGraph, edge_ids: set[int]) -> tuple[int, int]:
    """The TTI (Definition 3) of an edge set: min and max edge timestamp."""
    if not edge_ids:
        raise InvalidParameterError("TTI of an empty edge set is undefined")
    times = [graph.edges[eid].t for eid in edge_ids]
    return min(times), max(times)
