"""Temporal graph metrics.

Descriptive statistics beyond Table III, used to validate that synthetic
datasets have the temporal character their recipes target and by the
examples to describe their inputs:

* timestamp distinctness and occupancy (what separates WK/PL/YT from the
  rest of the paper's datasets);
* pair multiplicity (the multigraph factor);
* burstiness of the inter-event time distribution (Goh & Barabási's
  ``B = (sigma - mu) / (sigma + mu)``): ~0 for a Poisson process,
  positive for bursty streams, -1 for perfectly regular ones;
* degree histogram summaries (skew driving non-trivial ``kmax``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class TemporalMetrics:
    """Summary metrics of a temporal graph's time dimension."""

    distinctness: float
    """Distinct timestamps per temporal edge, ``tmax / |E|`` (0..1]."""

    mean_edges_per_timestamp: float
    """Average batch size ``|E| / tmax``."""

    max_edges_per_timestamp: int
    """Heaviest single timestamp."""

    pair_multiplicity: float
    """Temporal edges per distinct vertex pair (1.0 = simple graph)."""

    burstiness: float
    """Goh-Barabási burstiness of global inter-event times, in [-1, 1]."""


def timestamp_histogram(graph: TemporalGraph) -> list[int]:
    """Edges per (normalised) timestamp, index 0 unused."""
    counts = [0] * (graph.tmax + 1)
    for _, _, t in graph.edges:
        counts[t] += 1
    return counts


def burstiness(inter_event_times: list[float]) -> float:
    """Goh-Barabási burstiness coefficient of a gap sequence.

    Returns 0.0 for degenerate inputs (fewer than two gaps or zero
    mean), matching the convention that a constant stream is not bursty.
    """
    if len(inter_event_times) < 2:
        return 0.0
    n = len(inter_event_times)
    mean = sum(inter_event_times) / n
    if mean == 0:
        return 0.0
    variance = sum((x - mean) ** 2 for x in inter_event_times) / n
    sigma = math.sqrt(variance)
    if sigma + mean == 0:
        return 0.0
    return (sigma - mean) / (sigma + mean)


def compute_temporal_metrics(graph: TemporalGraph) -> TemporalMetrics:
    """Compute the full metric bundle (raw-timestamp gaps for burstiness)."""
    if graph.num_edges == 0:
        return TemporalMetrics(0.0, 0.0, 0, 0.0, 0.0)
    histogram = timestamp_histogram(graph)
    pairs = graph.degree_statistics()["num_pairs"]
    raw_times = sorted(graph.raw_time_of(t) for _, _, t in graph.edges)
    gaps = [
        float(b - a) for a, b in zip(raw_times, raw_times[1:])
    ]
    return TemporalMetrics(
        distinctness=graph.tmax / graph.num_edges,
        mean_edges_per_timestamp=graph.num_edges / max(1, graph.tmax),
        max_edges_per_timestamp=max(histogram),
        pair_multiplicity=graph.num_edges / max(1, pairs),
        burstiness=burstiness(gaps),
    )


def degree_histogram(graph: TemporalGraph) -> dict[int, int]:
    """Distinct-neighbour degree -> vertex count."""
    neighbours: dict[int, set[int]] = {}
    for u, v, _ in graph.edges:
        neighbours.setdefault(u, set()).add(v)
        neighbours.setdefault(v, set()).add(u)
    histogram: dict[int, int] = {}
    for s in neighbours.values():
        histogram[len(s)] = histogram.get(len(s), 0) + 1
    return dict(sorted(histogram.items()))


def activity_profile(
    graph: TemporalGraph, num_buckets: int = 10
) -> list[int]:
    """Edges per equal-width time bucket — a coarse activity curve."""
    if num_buckets < 1:
        raise ValueError("need at least one bucket")
    if graph.num_edges == 0:
        return [0] * num_buckets
    buckets = [0] * num_buckets
    span = graph.tmax
    for _, _, t in graph.edges:
        index = min(num_buckets - 1, (t - 1) * num_buckets // span)
        buckets[index] += 1
    return buckets
