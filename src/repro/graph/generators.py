"""Synthetic temporal graph generators.

The evaluation datasets of Table III cannot be fetched in this offline
environment, so the dataset registry builds scaled-down synthetic stand-ins
from two ingredients implemented here:

* :func:`chung_lu_temporal` — heavy-tailed background traffic: a temporal
  Chung–Lu multigraph whose endpoints are drawn proportionally to
  power-law weights and whose timestamps are uniform over ``1..tmax``.
  This reproduces the degree skew (and hence non-trivial ``kmax``) of the
  SNAP/KONECT graphs.
* :func:`planted_bursts` — bursty community traffic: dense vertex groups
  interacting inside short time intervals.  Bursts are what make
  *temporal* k-cores appear inside narrow windows, mirroring the
  misinformation-campaign / transaction-burst structure the paper's
  introduction motivates.

:func:`generate_bursty` combines both, which is the recipe format used by
:mod:`repro.datasets.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph


def _power_law_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Vertex attractiveness weights with a Pareto tail (shuffled)."""
    if exponent <= 1.0:
        raise InvalidParameterError(f"power-law exponent must exceed 1, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(weights)
    return weights / weights.sum()


def chung_lu_temporal(
    num_vertices: int,
    num_edges: int,
    *,
    tmax: int,
    exponent: float = 2.5,
    seed: int | None = None,
    repeat_rate: float = 0.0,
) -> list[tuple[int, int, int]]:
    """Sample a temporal Chung–Lu multigraph as an edge triple list.

    ``repeat_rate`` in ``[0, 1)`` controls pair repetition: each sampled
    pair is emitted ``1 + Geometric(1 - repeat_rate)`` times at fresh
    uniform timestamps, which reproduces the dense-multigraph character of
    datasets like Email (336 temporal edges per vertex on average).
    """
    if num_vertices < 2:
        raise InvalidParameterError("need at least two vertices")
    if tmax < 1:
        raise InvalidParameterError("tmax must be positive")
    if not 0.0 <= repeat_rate < 1.0:
        raise InvalidParameterError(f"repeat_rate must be in [0, 1), got {repeat_rate}")
    rng = np.random.default_rng(seed)
    probabilities = _power_law_weights(num_vertices, exponent, rng)
    triples: list[tuple[int, int, int]] = []
    while len(triples) < num_edges:
        remaining = num_edges - len(triples)
        batch = max(64, int(remaining * 1.2))
        us = rng.choice(num_vertices, size=batch, p=probabilities)
        vs = rng.choice(num_vertices, size=batch, p=probabilities)
        ts = rng.integers(1, tmax + 1, size=batch)
        for u, v, t in zip(us.tolist(), vs.tolist(), ts.tolist()):
            if u == v:
                continue
            triples.append((u, v, t))
            if repeat_rate > 0.0:
                extra = rng.geometric(1.0 - repeat_rate) - 1
                for _ in range(int(extra)):
                    if len(triples) >= num_edges:
                        break
                    triples.append((u, v, int(rng.integers(1, tmax + 1))))
            if len(triples) >= num_edges:
                break
    return triples[:num_edges]


def planted_bursts(
    num_vertices: int,
    *,
    tmax: int,
    num_bursts: int,
    burst_size: int,
    burst_width: int,
    edges_per_burst: int,
    seed: int | None = None,
) -> list[tuple[int, int, int]]:
    """Plant dense community bursts: short windows of intense interaction.

    Each burst picks ``burst_size`` random vertices and a window of
    ``burst_width`` consecutive timestamps, then samples
    ``edges_per_burst`` pairs (with repetition allowed) inside the group
    with timestamps uniform in the window.  A burst with
    ``edges_per_burst >= burst_size * k`` typically contains a temporal
    k-core confined to its window.
    """
    if burst_size < 2 or burst_size > num_vertices:
        raise InvalidParameterError(
            f"burst_size {burst_size} out of range for {num_vertices} vertices"
        )
    if burst_width < 1 or burst_width > tmax:
        raise InvalidParameterError(f"burst_width {burst_width} out of range for tmax={tmax}")
    rng = np.random.default_rng(seed)
    triples: list[tuple[int, int, int]] = []
    for _ in range(num_bursts):
        group = rng.choice(num_vertices, size=burst_size, replace=False)
        start = int(rng.integers(1, tmax - burst_width + 2))
        end = start + burst_width - 1
        for _ in range(edges_per_burst):
            u, v = rng.choice(burst_size, size=2, replace=False)
            t = int(rng.integers(start, end + 1))
            triples.append((int(group[u]), int(group[v]), t))
    return triples


@dataclass(frozen=True)
class BurstyConfig:
    """Recipe for a combined background + bursts temporal graph.

    The dataset registry instantiates one of these per Table III dataset.
    All sizes refer to the *generated* graph, before normalisation.
    """

    num_vertices: int
    background_edges: int
    tmax: int
    exponent: float = 2.5
    repeat_rate: float = 0.0
    num_bursts: int = 0
    burst_size: int = 8
    burst_width: int = 10
    edges_per_burst: int = 48
    seed: int = 0
    name: str = field(default="synthetic", compare=False)

    def total_edges(self) -> int:
        return self.background_edges + self.num_bursts * self.edges_per_burst


def generate_bursty(config: BurstyConfig) -> TemporalGraph:
    """Materialise a :class:`BurstyConfig` into a temporal graph.

    The background and burst streams use decorrelated seeds derived from
    ``config.seed`` so that changing one knob does not silently reshuffle
    the other stream.
    """
    triples: list[tuple[int, int, int]] = []
    if config.background_edges > 0:
        triples.extend(
            chung_lu_temporal(
                config.num_vertices,
                config.background_edges,
                tmax=config.tmax,
                exponent=config.exponent,
                seed=config.seed * 7919 + 1,
                repeat_rate=config.repeat_rate,
            )
        )
    if config.num_bursts > 0:
        triples.extend(
            planted_bursts(
                config.num_vertices,
                tmax=config.tmax,
                num_bursts=config.num_bursts,
                burst_size=config.burst_size,
                burst_width=config.burst_width,
                edges_per_burst=config.edges_per_burst,
                seed=config.seed * 104729 + 2,
            )
        )
    return TemporalGraph(triples)


def uniform_random_temporal(
    num_vertices: int,
    num_edges: int,
    *,
    tmax: int,
    seed: int | None = None,
) -> TemporalGraph:
    """Erdős–Rényi-style temporal multigraph (uniform endpoints and times).

    Primarily used by property-based tests as an unstructured input.
    """
    rng = np.random.default_rng(seed)
    triples: list[tuple[int, int, int]] = []
    while len(triples) < num_edges:
        u = int(rng.integers(0, num_vertices))
        v = int(rng.integers(0, num_vertices))
        if u == v:
            continue
        triples.append((u, v, int(rng.integers(1, tmax + 1))))
    return TemporalGraph(triples)
