"""Static snapshots of a temporal graph over a time window.

The paper's Definition 2 evaluates k-cores on the *projected graph*
``G[ts, te]`` — the unlabelled multigraph of all edges inside the window —
with degrees counted over distinct neighbours.  :class:`Snapshot` is the
simple-graph view used by the static k-core engine and the brute-force
oracle: it collapses parallel temporal edges of a pair into one static
edge while remembering the temporal edge ids behind each pair.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.temporal_graph import TemporalGraph


class Snapshot:
    """Simple undirected graph induced by a time window.

    Attributes
    ----------
    window:
        The ``(ts, te)`` window the snapshot was taken over.
    """

    __slots__ = ("window", "_adj", "_pair_edge_ids", "_num_vertices")

    def __init__(self, num_vertices: int, window: tuple[int, int]):
        self.window = window
        self._num_vertices = num_vertices
        self._adj: dict[int, set[int]] = {}
        self._pair_edge_ids: dict[tuple[int, int], list[int]] = {}

    @classmethod
    def from_graph(cls, graph: TemporalGraph, ts: int, te: int) -> "Snapshot":
        """Project ``graph`` onto ``[ts, te]`` and collapse parallel edges."""
        snapshot = cls(graph.num_vertices, (ts, te))
        adj = snapshot._adj
        pair_ids = snapshot._pair_edge_ids
        for eid in graph.window_edge_ids(ts, te):
            u, v, _ = graph.edges[eid]
            pair = (u, v)
            ids = pair_ids.get(pair)
            if ids is None:
                pair_ids[pair] = [eid]
                adj.setdefault(u, set()).add(v)
                adj.setdefault(v, set()).add(u)
            else:
                ids.append(eid)
        return snapshot

    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices of the *parent* graph (isolated ones included)."""
        return self._num_vertices

    @property
    def num_active_vertices(self) -> int:
        """Vertices incident to at least one edge inside the window."""
        return len(self._adj)

    @property
    def num_static_edges(self) -> int:
        return len(self._pair_edge_ids)

    def neighbours(self, u: int) -> set[int]:
        """Distinct neighbours of ``u`` within the window (empty set if none)."""
        return self._adj.get(u, set())

    def degree(self, u: int) -> int:
        return len(self._adj.get(u, ()))

    def vertices(self) -> Iterator[int]:
        """Iterate over active vertices."""
        return iter(self._adj)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate over static edges as canonical ``(u, v)`` with ``u < v``."""
        return iter(self._pair_edge_ids)

    def temporal_edge_ids(self, u: int, v: int) -> list[int]:
        """Ids of the temporal edges behind static pair ``{u, v}``."""
        if u > v:
            u, v = v, u
        return self._pair_edge_ids.get((u, v), [])

    def induced_temporal_edge_ids(self, vertices: set[int]) -> list[int]:
        """All temporal edge ids with both endpoints inside ``vertices``."""
        ids: list[int] = []
        for (u, v), eids in self._pair_edge_ids.items():
            if u in vertices and v in vertices:
                ids.extend(eids)
        return ids

    def __repr__(self) -> str:
        ts, te = self.window
        return (
            f"Snapshot(window=[{ts}, {te}], active={self.num_active_vertices}, "
            f"pairs={self.num_static_edges})"
        )
