"""Edge-list readers and writers (SNAP / KONECT conventions).

The fourteen datasets of Table III come from SNAP and the KONECT project,
both of which distribute temporal graphs as whitespace-separated text
lines.  This module parses the two common layouts:

* SNAP temporal:   ``u v t`` per line, ``#`` comments;
* KONECT (out.*):  ``u v [weight] t`` per line, ``%`` comments.

Timestamps are arbitrary integers (usually unix seconds) and are
normalised by :class:`~repro.graph.temporal_graph.TemporalGraph`.
"""

from __future__ import annotations

import gzip
import os
from collections.abc import Iterator
from typing import IO

from repro.errors import GraphFormatError
from repro.graph.temporal_graph import TemporalGraph

_COMMENT_PREFIXES = ("#", "%")


def _open_text(path: str | os.PathLike[str]) -> IO[str]:
    path = os.fspath(path)
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_edge_lines(
    lines: Iterator[str] | list[str],
    *,
    layout: str = "snap",
) -> Iterator[tuple[str, str, int]]:
    """Parse edge lines into ``(u, v, t)`` triples of string labels.

    ``layout`` is ``"snap"`` (``u v t``) or ``"konect"``
    (``u v [weight] t`` — the timestamp is the *last* field).
    Comment and blank lines are skipped.
    """
    if layout not in ("snap", "konect"):
        raise GraphFormatError(f"unknown layout {layout!r}")
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        fields = line.split()
        if layout == "snap":
            if len(fields) != 3:
                raise GraphFormatError(
                    f"line {lineno}: expected 'u v t', got {len(fields)} fields"
                )
            u, v, t_str = fields
        else:
            if len(fields) < 3 or len(fields) > 4:
                raise GraphFormatError(
                    f"line {lineno}: expected 'u v [w] t', got {len(fields)} fields"
                )
            u, v, t_str = fields[0], fields[1], fields[-1]
        try:
            t = int(float(t_str)) if "." in t_str or "e" in t_str.lower() else int(t_str)
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: bad timestamp {t_str!r}") from exc
        yield u, v, t


def load_edge_list(
    path: str | os.PathLike[str],
    *,
    layout: str = "snap",
    deduplicate: bool = False,
) -> TemporalGraph:
    """Load a temporal graph from a (possibly gzipped) edge-list file."""
    with _open_text(path) as handle:
        return TemporalGraph(
            iter_edge_lines(handle, layout=layout), deduplicate=deduplicate
        )


def loads_edge_list(text: str, *, layout: str = "snap") -> TemporalGraph:
    """Load a temporal graph from edge-list text (useful in tests)."""
    return TemporalGraph(iter_edge_lines(text.splitlines(), layout=layout))


def dump_edge_list(
    graph: TemporalGraph,
    path: str | os.PathLike[str],
    *,
    raw_timestamps: bool = True,
) -> None:
    """Write a graph back out in SNAP layout.

    With ``raw_timestamps=True`` the original timestamps are emitted;
    otherwise the normalised ``1..tmax`` values are written.
    """
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write("# u v t\n")
        for u, v, t in graph.edges:
            stamp = graph.raw_time_of(t) if raw_timestamps else t
            handle.write(f"{graph.label_of(u)} {graph.label_of(v)} {stamp}\n")
