"""Compiled flat-array representation of a temporal graph.

:class:`CompiledGraph` lowers a :class:`~repro.graph.temporal_graph.TemporalGraph`
into a handful of flat arrays so that the CoreTime kernel (Algorithm 2)
and the index-serving layer run over contiguous integer storage instead
of per-query dicts, nested list cells and closures:

* **Timestamp offsets** — edges are stored sorted by timestamp, so the
  edge ids of any window ``[ts, te]`` are the contiguous range
  ``time_offset[ts] .. time_offset[te + 1]``; window iteration is O(1)
  plus the matches.
* **Distinct-neighbour CSR** — ``adj_neighbour[adj_offsets[u] :
  adj_offsets[u + 1]]`` lists the distinct neighbours of ``u`` (sorted by
  vertex id).  Each adjacency *slot* carries the half-open slice
  ``slot_times_start[s] : slot_times_end[s]`` into the single flat
  ``pair_times`` array (``array('q')``) holding the pair's sorted edge
  timestamps, stored once per unordered pair; the two directional slots
  of a pair share the slice (``slot_pid`` maps a slot to its pair).
* **Edge→slot maps** — ``edge_slot_u[eid]`` / ``edge_slot_v[eid]`` give
  the adjacency slots of the edge's endpoints, so the decremental scan
  can maintain per-pair live-edge counts with two array writes per edge.
* **Incident-edge CSR** — per vertex, incident temporal edges sorted by
  ascending timestamp (``np_inc_time`` / ``np_inc_other`` /
  ``np_inc_eid``).  The skyline-emission loop needs the edges of a vertex
  with time at least the current start: with an ascending sort that is a
  binary-searchable *suffix* of the vertex's CSR segment, which the
  kernel slices with ``numpy.searchsorted`` and processes vectorised.

Arrays that feed the kernel's vectorised inner loops are mirrored as
``numpy.int64`` arrays (``np_`` prefix); the pointer-chasing loops of the
initial decremental scan read the plain-Python side.  The compiled form
is immutable, built once per graph in a single pass, and cached on the
graph by :meth:`TemporalGraph.compiled`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.graph.temporal_graph import TemporalGraph


def _int64_ndarray(section) -> np.ndarray:
    """An ``int64`` ndarray over any int64 buffer (zero-copy when possible)."""
    if len(section) == 0:
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(section, dtype=np.int64)


class CompiledGraph:
    """Flat-array (CSR) view of a temporal graph, built once and reused.

    All attributes are read-only by convention; the CoreTime kernel
    copies the mutable bits (pair pointers, earliest-time cache, live
    counts) per query.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "tmax",
        "num_slots",
        "num_pairs",
        "edge_u",
        "edge_v",
        "edge_t",
        "time_offset",
        "adj_offsets",
        "adj_neighbour",
        "slot_pid",
        "slot_times_start",
        "slot_times_end",
        "slot_count",
        "pair_offset",
        "pair_times",
        "full_degree",
        "edge_slot_u",
        "edge_slot_v",
        "inc_offsets",
        "np_adj_neighbour",
        "np_slot_pid",
        "np_slot_first_time",
        "np_edge_u",
        "np_edge_v",
        "np_edge_t",
        "np_edge_slot_u",
        "np_inc_time",
        "np_inc_other",
        "np_inc_eid",
    )

    def __init__(self, graph: "TemporalGraph"):
        edges = graph.edges
        n = graph.num_vertices
        m = len(edges)
        tmax = graph.tmax
        self.num_vertices = n
        self.num_edges = m
        self.tmax = tmax

        edge_u = array("q", bytes(8 * m))
        edge_v = array("q", bytes(8 * m))
        edge_t = array("q", bytes(8 * m))
        for eid, (u, v, t) in enumerate(edges):
            edge_u[eid] = u
            edge_v[eid] = v
            edge_t[eid] = t

        # Timestamp -> edge-id offsets: the graph already maintains the
        # prefix table (edges are stored sorted by t); share it.
        time_offset = graph.time_offsets()

        # ---- distinct pairs and their timestamp lists ----
        # Edges arrive sorted by (t, u, v) with u < v, so each pair's
        # timestamp list is built already sorted.
        pair_ids: dict[int, int] = {}
        pair_times_lists: list[list[int]] = []
        pair_endpoints: list[tuple[int, int]] = []
        for u, v, t in edges:
            key = u * n + v
            pid = pair_ids.get(key)
            if pid is None:
                pair_ids[key] = len(pair_times_lists)
                pair_times_lists.append([t])
                pair_endpoints.append((u, v))
            else:
                pair_times_lists[pid].append(t)
        num_pairs = len(pair_times_lists)
        self.num_pairs = num_pairs

        # ---- distinct-neighbour CSR (sorted by neighbour id) ----
        neighbour_lists: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for pid, (u, v) in enumerate(pair_endpoints):
            neighbour_lists[u].append((v, pid))
            neighbour_lists[v].append((u, pid))
        num_slots = 2 * num_pairs
        self.num_slots = num_slots

        adj_offsets = [0] * (n + 1)
        adj_neighbour = [0] * num_slots
        slot_pid = [0] * num_slots
        slot_lookup: dict[int, int] = {}
        cursor = 0
        for u in range(n):
            adj_offsets[u] = cursor
            lst = neighbour_lists[u]
            lst.sort()
            for v, pid in lst:
                adj_neighbour[cursor] = v
                slot_pid[cursor] = pid
                slot_lookup[u * n + v] = cursor
                cursor += 1
        adj_offsets[n] = cursor

        # ---- flat pair timestamps with per-slot slices ----
        pair_offset = [0] * (num_pairs + 1)
        running = 0
        for pid, times in enumerate(pair_times_lists):
            pair_offset[pid] = running
            running += len(times)
        pair_offset[num_pairs] = running
        pair_times = array("q", bytes(8 * running))
        write = 0
        for times in pair_times_lists:
            for t in times:
                pair_times[write] = t
                write += 1
        slot_times_start = [pair_offset[pid] for pid in slot_pid]
        slot_times_end = [pair_offset[pid + 1] for pid in slot_pid]
        slot_count = [pair_offset[pid + 1] - pair_offset[pid] for pid in slot_pid]
        full_degree = [adj_offsets[u + 1] - adj_offsets[u] for u in range(n)]

        # ---- edge -> adjacency-slot maps ----
        edge_slot_u = array("q", bytes(8 * m))
        edge_slot_v = array("q", bytes(8 * m))
        for eid, (u, v, _) in enumerate(edges):
            edge_slot_u[eid] = slot_lookup[u * n + v]
            edge_slot_v[eid] = slot_lookup[v * n + u]

        # ---- per-vertex incident edges, ascending timestamp ----
        inc_degree = [0] * n
        for u, v, _ in edges:
            inc_degree[u] += 1
            inc_degree[v] += 1
        inc_offsets = [0] * (n + 1)
        running = 0
        for u in range(n):
            inc_offsets[u] = running
            running += inc_degree[u]
        inc_offsets[n] = running
        inc_time = array("q", bytes(8 * running))
        inc_other = array("q", bytes(8 * running))
        inc_eid = array("q", bytes(8 * running))
        fill = list(inc_offsets[:n])
        for eid in range(m):
            u = edge_u[eid]
            v = edge_v[eid]
            t = edge_t[eid]
            pos = fill[u]
            inc_time[pos] = t
            inc_other[pos] = v
            inc_eid[pos] = eid
            fill[u] = pos + 1
            pos = fill[v]
            inc_time[pos] = t
            inc_other[pos] = u
            inc_eid[pos] = eid
            fill[v] = pos + 1

        self.edge_u = edge_u
        self.edge_v = edge_v
        self.edge_t = edge_t
        self.time_offset = time_offset
        self.adj_offsets = adj_offsets
        self.adj_neighbour = adj_neighbour
        self.slot_pid = slot_pid
        self.slot_times_start = slot_times_start
        self.slot_times_end = slot_times_end
        self.slot_count = slot_count
        self.pair_offset = pair_offset
        self.pair_times = pair_times
        self.full_degree = full_degree
        self.edge_slot_u = edge_slot_u
        self.edge_slot_v = edge_slot_v
        self.inc_offsets = inc_offsets

        # ---- numpy mirrors feeding the vectorised kernel loops ----
        self.np_adj_neighbour = np.asarray(adj_neighbour, dtype=np.int64)
        self.np_slot_pid = np.asarray(slot_pid, dtype=np.int64)
        self.np_slot_first_time = np.asarray(
            [pair_times[start] for start in slot_times_start] if num_slots else [],
            dtype=np.int64,
        )
        self.np_edge_u = np.frombuffer(edge_u, dtype=np.int64) if m else np.empty(0, np.int64)
        self.np_edge_v = np.frombuffer(edge_v, dtype=np.int64) if m else np.empty(0, np.int64)
        self.np_edge_t = np.frombuffer(edge_t, dtype=np.int64) if m else np.empty(0, np.int64)
        self.np_edge_slot_u = (
            np.frombuffer(edge_slot_u, dtype=np.int64) if m else np.empty(0, np.int64)
        )
        self.np_inc_time = np.frombuffer(inc_time, dtype=np.int64) if running else np.empty(0, np.int64)
        self.np_inc_other = np.frombuffer(inc_other, dtype=np.int64) if running else np.empty(0, np.int64)
        self.np_inc_eid = np.frombuffer(inc_eid, dtype=np.int64) if running else np.empty(0, np.int64)

    # ------------------------------------------------------------------

    @classmethod
    def _from_parts(cls, meta: dict, parts, time_offset) -> "CompiledGraph":
        """Rebuild a compiled view from persisted flat sections.

        Trusted fast path used by :mod:`repro.store`: ``parts`` must map
        section names to int64 sequences produced by the store codec
        from a compiled graph — no consistency checks happen here.
        Sequence attributes may be zero-copy ``memoryview`` slices of
        the store's file mapping; every kernel consumer indexes, slices
        or copies them, which memoryviews support.
        """
        cg = cls.__new__(cls)
        cg.num_vertices = meta["num_vertices"]
        cg.num_edges = meta["num_edges"]
        cg.tmax = meta["tmax"]
        cg.num_slots = meta["num_slots"]
        cg.num_pairs = meta["num_pairs"]
        cg.time_offset = time_offset
        for name in (
            "edge_u",
            "edge_v",
            "edge_t",
            "adj_offsets",
            "adj_neighbour",
            "slot_pid",
            "slot_times_start",
            "slot_times_end",
            "slot_count",
            "pair_offset",
            "pair_times",
            "full_degree",
            "edge_slot_u",
            "edge_slot_v",
            "inc_offsets",
        ):
            setattr(cg, name, parts[name])
        cg.np_adj_neighbour = _int64_ndarray(parts["adj_neighbour"])
        cg.np_slot_pid = _int64_ndarray(parts["slot_pid"])
        cg.np_edge_u = _int64_ndarray(parts["edge_u"])
        cg.np_edge_v = _int64_ndarray(parts["edge_v"])
        cg.np_edge_t = _int64_ndarray(parts["edge_t"])
        cg.np_edge_slot_u = _int64_ndarray(parts["edge_slot_u"])
        cg.np_inc_time = _int64_ndarray(parts["inc_time"])
        cg.np_inc_other = _int64_ndarray(parts["inc_other"])
        cg.np_inc_eid = _int64_ndarray(parts["inc_eid"])
        np_pair_times = _int64_ndarray(parts["pair_times"])
        starts = _int64_ndarray(parts["slot_times_start"])
        cg.np_slot_first_time = (
            np_pair_times[starts] if cg.num_slots else np.empty(0, np.int64)
        )
        return cg

    def window_edge_range(self, ts: int, te: int) -> range:
        """Edge ids with timestamp in ``[ts, te]`` as a contiguous range.

        Bounds are clamped to the graph span; an empty window yields an
        empty range.  O(1).
        """
        if te < ts or te < 1 or ts > self.tmax:
            return range(0, 0)
        if ts < 1:
            ts = 1
        if te > self.tmax:
            te = self.tmax
        return range(self.time_offset[ts], self.time_offset[te + 1])

    def neighbours_of(self, u: int) -> list[int]:
        """Distinct neighbours of ``u`` over the full span (sorted)."""
        return self.adj_neighbour[self.adj_offsets[u] : self.adj_offsets[u + 1]]

    def pair_times_of(self, u: int, v: int) -> list[int]:
        """Sorted edge timestamps of the pair ``{u, v}`` (empty if none).

        Binary-searches ``u``'s sorted neighbour slice; O(log deg(u)).
        """
        hi = self.adj_offsets[u + 1]
        slot = bisect_left(self.adj_neighbour, v, self.adj_offsets[u], hi)
        if slot == hi or self.adj_neighbour[slot] != v:
            return []
        return list(
            self.pair_times[self.slot_times_start[slot] : self.slot_times_end[slot]]
        )

    def nbytes(self) -> int:
        """Approximate flat-storage footprint in bytes (flat arrays only).

        Numpy mirrors created with ``frombuffer`` share memory with their
        ``array('q')`` source (their ``base`` is set) and are not counted
        twice; only owning arrays contribute.
        """
        total = 0
        for name in self.__slots__:
            value = getattr(self, name)
            if isinstance(value, array):
                total += value.itemsize * len(value)
            elif isinstance(value, memoryview):
                total += value.nbytes
            elif isinstance(value, np.ndarray):
                if value.base is None:
                    total += value.nbytes
            elif isinstance(value, (list, tuple)):
                total += 8 * len(value)
        return total

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"pairs={self.num_pairs}, tmax={self.tmax})"
        )


def compile_graph(graph: "TemporalGraph") -> CompiledGraph:
    """Build (without caching) the compiled view of ``graph``.

    Most callers should use :meth:`TemporalGraph.compiled`, which caches
    the result on the graph instance.
    """
    return CompiledGraph(graph)
