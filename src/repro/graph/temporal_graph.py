"""The temporal graph store.

A :class:`TemporalGraph` is an undirected multigraph whose edges carry an
integer timestamp.  Following the paper's preliminaries (Section II), the
store normalises raw timestamps to a *dense* integer range ``1..tmax`` so
that query ranges, bucket arrays and counting sorts can be indexed directly
by timestamp.  The mapping back to raw timestamps is retained for display.

Vertices may be arbitrary hashable labels on input; internally they are
relabelled to ``0..n-1``.  Self-loops are dropped (a self-loop never
contributes to a k-core under distinct-neighbour degree semantics).

Unlike the paper — which assumes at most one edge per vertex pair "for
simplicity" — this store fully supports repeated interactions between the
same pair at different (or equal) timestamps, because every real dataset in
Table III is a multigraph.  All degree computations downstream count
*distinct neighbours*.
"""

from __future__ import annotations

import bisect
from collections.abc import Hashable, Iterable, Iterator
from typing import NamedTuple

from repro.errors import EmptyGraphError, GraphFormatError, InvalidParameterError


class TemporalEdge(NamedTuple):
    """A normalised temporal edge ``u < v`` with timestamp ``t``."""

    u: int
    v: int
    t: int


class TemporalGraph:
    """An immutable undirected temporal multigraph.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v, t)`` triples.  ``u`` and ``v`` may be any
        hashable labels; ``t`` must be an integer (raw) timestamp.
    normalize_time:
        When true (default), raw timestamps are compressed to the dense
        range ``1..tmax`` preserving order.  When false, timestamps must
        already be positive integers and are used as-is (``tmax`` is then
        the maximum timestamp, and unused slots are permitted but cost
        memory in bucket arrays).
    deduplicate:
        When true, exact duplicate ``(u, v, t)`` triples are collapsed to a
        single edge.  Defaults to false (keep the multigraph as given).
    """

    __slots__ = (
        "_edges",
        "_edge_ids_by_time",
        "_time_offset",
        "_labels",
        "_label_ids",
        "_raw_times",
        "_num_dropped_self_loops",
        "_adjacency_cache",
        "_compiled_cache",
    )

    def __init__(
        self,
        edges: Iterable[tuple[Hashable, Hashable, int]],
        *,
        normalize_time: bool = True,
        deduplicate: bool = False,
    ):
        label_ids: dict[Hashable, int] = {}
        labels: list[Hashable] = []
        raw_triples: list[tuple[int, int, int]] = []
        dropped = 0
        for index, edge in enumerate(edges):
            try:
                raw_u, raw_v, raw_t = edge
            except (TypeError, ValueError) as exc:
                raise GraphFormatError(f"edge #{index} is not a (u, v, t) triple: {edge!r}") from exc
            if not isinstance(raw_t, int):
                raise GraphFormatError(f"edge #{index} has non-integer timestamp {raw_t!r}")
            if raw_u == raw_v:
                dropped += 1
                continue
            u = label_ids.setdefault(raw_u, len(labels))
            if u == len(labels):
                labels.append(raw_u)
            v = label_ids.setdefault(raw_v, len(labels))
            if v == len(labels):
                labels.append(raw_v)
            if u > v:
                u, v = v, u
            raw_triples.append((raw_t, u, v))

        raw_triples.sort()
        if normalize_time:
            raw_times: list[int] = []
            normalized: list[TemporalEdge] = []
            for raw_t, u, v in raw_triples:
                if not raw_times or raw_t != raw_times[-1]:
                    raw_times.append(raw_t)
                normalized.append(TemporalEdge(u, v, len(raw_times)))
        else:
            raw_times = []
            normalized = []
            for raw_t, u, v in raw_triples:
                if raw_t < 1:
                    raise GraphFormatError(
                        f"timestamp {raw_t} < 1; pass normalize_time=True for raw timestamps"
                    )
                normalized.append(TemporalEdge(u, v, raw_t))

        if deduplicate:
            seen: set[TemporalEdge] = set()
            unique: list[TemporalEdge] = []
            for edge_ in normalized:
                if edge_ not in seen:
                    seen.add(edge_)
                    unique.append(edge_)
            normalized = unique

        self._edges: tuple[TemporalEdge, ...] = tuple(normalized)
        self._labels: tuple[Hashable, ...] = tuple(labels)
        self._label_ids = label_ids
        self._raw_times: tuple[int, ...] = tuple(raw_times)
        self._num_dropped_self_loops = dropped
        self._adjacency_cache: list[list[tuple[int, int, int]]] | None = None
        self._compiled_cache = None

        tmax = self.tmax
        ids_by_time: list[list[int]] = [[] for _ in range(tmax + 1)]
        for eid, edge_ in enumerate(self._edges):
            ids_by_time[edge_.t].append(eid)
        self._edge_ids_by_time: tuple[tuple[int, ...], ...] = tuple(
            tuple(ids) for ids in ids_by_time
        )
        # Edges are sorted by timestamp, so ``_time_offset[t]`` (the number
        # of edges stamped strictly before ``t``) turns any window into a
        # contiguous edge-id range: ids in ``[ts, te]`` are exactly
        # ``range(_time_offset[ts], _time_offset[te + 1])``.
        offsets = [0] * (tmax + 2)
        running = 0
        for t in range(1, tmax + 2):
            offsets[t] = running = running + len(ids_by_time[t - 1])
        self._time_offset: tuple[int, ...] = tuple(offsets)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices appearing in any edge."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of temporal edges (with multiplicity)."""
        return len(self._edges)

    @property
    def tmax(self) -> int:
        """Largest (normalised) timestamp; 0 for an empty graph."""
        return self._edges[-1].t if self._edges else 0

    @property
    def edges(self) -> tuple[TemporalEdge, ...]:
        """All edges sorted by timestamp; the index is the edge id."""
        return self._edges

    @property
    def num_dropped_self_loops(self) -> int:
        return self._num_dropped_self_loops

    def label_of(self, vertex: int) -> Hashable:
        """Original label of internal vertex id ``vertex``."""
        return self._labels[vertex]

    def id_of(self, label: Hashable) -> int:
        """Internal vertex id of an original label."""
        try:
            return self._label_ids[label]
        except KeyError as exc:
            raise KeyError(f"unknown vertex label {label!r}") from exc

    def raw_time_of(self, t: int) -> int:
        """Raw timestamp behind normalised time ``t`` (identity if not normalised)."""
        if not self._raw_times:
            return t
        if t < 1 or t > len(self._raw_times):
            raise InvalidParameterError(f"normalised time {t} outside 1..{len(self._raw_times)}")
        return self._raw_times[t - 1]

    def normalized_time_of(self, raw_t: int) -> int:
        """Normalised time of a raw timestamp (exact match required)."""
        if not self._raw_times:
            return raw_t
        pos = bisect.bisect_left(self._raw_times, raw_t)
        if pos == len(self._raw_times) or self._raw_times[pos] != raw_t:
            raise KeyError(f"raw timestamp {raw_t} not present in graph")
        return pos + 1

    def snap_raw_window(self, raw_ts: int, raw_te: int) -> tuple[int, int] | None:
        """Largest normalised window inside the raw range ``[raw_ts, raw_te]``.

        Bounds snap *inward* to the nearest ingested timestamps by
        bisecting the sorted raw-timestamp table — O(log tmax), never a
        scan.  Returns ``None`` when no ingested timestamp falls inside
        the range (or the range is empty).  For graphs built with
        ``normalize_time=False`` the mapping is the identity clamped to
        the span.
        """
        if raw_ts > raw_te or not self._edges:
            return None
        if not self._raw_times:
            ts, te = max(raw_ts, 1), min(raw_te, self.tmax)
            return (ts, te) if ts <= te else None
        lo = bisect.bisect_left(self._raw_times, raw_ts) + 1
        hi = bisect.bisect_right(self._raw_times, raw_te)
        return (lo, hi) if lo <= hi else None

    def time_offsets(self) -> tuple[int, ...]:
        """The timestamp→edge-id prefix table (length ``tmax + 2``).

        ``time_offsets()[t]`` is the number of edges stamped strictly
        before ``t``; edge ids in ``[ts, te]`` are exactly
        ``range(table[ts], table[te + 1])``.  Shared with the compiled
        flat-array view so the table exists once per graph.
        """
        return self._time_offset

    def edge_ids_at(self, t: int) -> tuple[int, ...]:
        """Edge ids whose timestamp is exactly ``t``."""
        if t < 1 or t > self.tmax:
            return ()
        return self._edge_ids_by_time[t]

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def adjacency(self) -> list[list[tuple[int, int, int]]]:
        """Per-vertex incidence lists ``[(neighbour, t, edge_id), ...]``.

        Lists are sorted by timestamp (then edge id); built lazily once and
        cached because every algorithm starts from it.
        """
        if self._adjacency_cache is None:
            adjacency: list[list[tuple[int, int, int]]] = [
                [] for _ in range(self.num_vertices)
            ]
            for eid, (u, v, t) in enumerate(self._edges):
                adjacency[u].append((v, t, eid))
                adjacency[v].append((u, t, eid))
            self._adjacency_cache = adjacency
        return self._adjacency_cache

    def compiled(self):
        """The flat-array (CSR) view of this graph, built once and cached.

        Returns a :class:`repro.graph.csr.CompiledGraph`; every CoreTime
        query over this graph shares it, which is what removes the
        per-query adjacency rebuild from the hot path.
        """
        if self._compiled_cache is None:
            from repro.graph.csr import CompiledGraph

            self._compiled_cache = CompiledGraph(self)
        return self._compiled_cache

    def window_edge_ids(self, ts: int, te: int) -> range:
        """Edge ids whose timestamp lies in ``[ts, te]``, in timestamp order.

        Edges are stored sorted by timestamp, so the ids of a window form
        the contiguous range ``_time_offset[ts] .. _time_offset[te + 1]``;
        the lookup is O(1) regardless of window width (sparse windows cost
        nothing), and iteration is proportional to the matches alone.
        """
        self.check_window(ts, te)
        return range(self._time_offset[ts], self._time_offset[te + 1])

    def window_edges(self, ts: int, te: int) -> Iterator[TemporalEdge]:
        """Yield the edges of the projected graph ``G[ts, te]``."""
        edges = self._edges
        for eid in self.window_edge_ids(ts, te):
            yield edges[eid]

    def check_window(self, ts: int, te: int) -> None:
        """Validate that ``[ts, te]`` is a window inside ``[1, tmax]``."""
        if self.num_edges == 0:
            raise EmptyGraphError("operation requires a non-empty temporal graph")
        if ts > te:
            raise InvalidParameterError(f"empty window [{ts}, {te}]")
        if ts < 1 or te > self.tmax:
            raise InvalidParameterError(
                f"window [{ts}, {te}] outside graph span [1, {self.tmax}]"
            )

    def degree_statistics(self) -> dict[str, float]:
        """Distinct-neighbour degree statistics over the full time span.

        Returns a dict with ``avg``, ``max`` and ``num_pairs`` (distinct
        vertex pairs), matching the ``deg_avg`` quantity used by the
        paper's complexity analysis.
        """
        neighbours: list[set[int]] = [set() for _ in range(self.num_vertices)]
        for u, v, _ in self._edges:
            neighbours[u].add(v)
            neighbours[v].add(u)
        degrees = [len(s) for s in neighbours]
        num_pairs = sum(degrees) // 2
        n = max(1, self.num_vertices)
        return {
            "avg": sum(degrees) / n,
            "max": max(degrees, default=0),
            "num_pairs": num_pairs,
        }

    # ------------------------------------------------------------------
    # Construction helpers & dunder protocol
    # ------------------------------------------------------------------

    @classmethod
    def _from_parts(
        cls,
        *,
        edges: tuple[TemporalEdge, ...],
        labels: tuple[Hashable, ...],
        raw_times: tuple[int, ...],
        time_offset: tuple[int, ...],
        num_dropped_self_loops: int = 0,
    ) -> "TemporalGraph":
        """Rebuild a graph from persisted parts, skipping normalisation.

        Trusted fast path used by :mod:`repro.store`: the parts must
        describe a graph previously produced by this class (edges sorted
        by timestamp with internal ids matching ``labels`` order, the
        prefix table consistent with the edge timestamps).  Restores the
        exact internal vertex and edge ids of the persisted graph.
        """
        graph = cls.__new__(cls)
        graph._edges = edges
        graph._labels = labels
        graph._label_ids = {label: u for u, label in enumerate(labels)}
        graph._raw_times = raw_times
        graph._num_dropped_self_loops = num_dropped_self_loops
        graph._adjacency_cache = None
        graph._compiled_cache = None
        graph._time_offset = time_offset
        # Edges are sorted by timestamp, so the ids at time t are the
        # contiguous range given by the prefix table.
        graph._edge_ids_by_time = tuple(
            tuple(range(time_offset[t], time_offset[t + 1]))
            for t in range(len(time_offset) - 1)
        )
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Hashable, Hashable, int]],
        **kwargs: bool,
    ) -> "TemporalGraph":
        """Build a graph from an iterable of ``(u, v, t)`` triples."""
        return cls(edges, **kwargs)

    def subgraph_in_window(self, ts: int, te: int) -> "TemporalGraph":
        """A new, independently normalised graph of the edges in ``[ts, te]``.

        Labels are preserved; timestamps are re-normalised, so the result's
        ``tmax`` equals the number of distinct timestamps inside the window.
        """
        triples = [
            (self._labels[u], self._labels[v], t) for u, v, t in self.window_edges(ts, te)
        ]
        return TemporalGraph(triples, normalize_time=True)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[TemporalEdge]:
        return iter(self._edges)

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"tmax={self.tmax})"
        )
