"""Static k-core primitives.

Three classic building blocks used throughout the reproduction:

* :func:`peel_k_core` — the peeling algorithm behind Definition 1: given a
  simple adjacency view, repeatedly delete vertices of degree below ``k``.
* :func:`core_decomposition` — the bucket-based Batagelj–Zaveršnik
  algorithm computing all core numbers in ``O(n + m)``; it yields the
  ``kmax`` statistic of Table III and drives the workload generator's
  choice of k.
* :class:`DecrementalCore` — insertion-free k-core maintenance: starting
  from a k-core, deleting edges cascades removals in amortised ``O(m)``
  total.  Both OTCD (Algorithm 1) and the decremental core-time scan are
  built on it.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Mapping

from repro.graph.snapshot import Snapshot


def peel_k_core(adjacency: Mapping[int, set[int]], k: int) -> set[int]:
    """Vertices of the k-core of a simple graph given as adjacency sets.

    ``adjacency`` maps each active vertex to its set of distinct
    neighbours; vertices absent from the mapping are treated as isolated.
    Returns the (possibly empty) set of k-core members.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    degree = {u: len(neigh) for u, neigh in adjacency.items()}
    removed: set[int] = set()
    queue = deque(u for u, d in degree.items() if d < k)
    in_queue = set(queue)
    while queue:
        u = queue.popleft()
        in_queue.discard(u)
        if u in removed or degree[u] >= k:
            continue
        removed.add(u)
        for v in adjacency[u]:
            if v in removed:
                continue
            degree[v] -= 1
            if degree[v] < k and v not in in_queue:
                queue.append(v)
                in_queue.add(v)
    return {u for u in adjacency if u not in removed}


def snapshot_k_core(snapshot: Snapshot, k: int) -> set[int]:
    """Vertices of the k-core of a window snapshot."""
    adjacency = {u: snapshot.neighbours(u) for u in snapshot.vertices()}
    return peel_k_core(adjacency, k)


def core_decomposition(adjacency: Mapping[int, set[int]]) -> dict[int, int]:
    """Core number of every active vertex (Batagelj–Zaveršnik, 2003).

    Uses bucket sort by degree and the standard "swap into the frontier"
    trick, giving linear time in the number of static edges.
    """
    vertices = list(adjacency)
    if not vertices:
        return {}
    degree = {u: len(adjacency[u]) for u in vertices}
    max_degree = max(degree.values())
    # Bucket-sorted vertex order by current degree.
    bins = [0] * (max_degree + 1)
    for d in degree.values():
        bins[d] += 1
    start = 0
    for d in range(max_degree + 1):
        count = bins[d]
        bins[d] = start
        start += count
    position: dict[int, int] = {}
    order: list[int] = [0] * len(vertices)
    next_slot = list(bins)
    for u in vertices:
        d = degree[u]
        position[u] = next_slot[d]
        order[next_slot[d]] = u
        next_slot[d] += 1

    core = dict(degree)
    for i in range(len(order)):
        u = order[i]
        for v in adjacency[u]:
            if core[v] > core[u]:
                # Move v one bucket down: swap it with the first vertex of
                # its current bucket, then shift the bucket boundary.
                dv = core[v]
                pv = position[v]
                pw = bins[dv]
                w = order[pw]
                if v != w:
                    order[pv], order[pw] = w, v
                    position[v], position[w] = pw, pv
                bins[dv] += 1
                core[v] -= 1
    return core


def kmax_of(adjacency: Mapping[int, set[int]]) -> int:
    """Maximum core number over all vertices (0 for an empty graph)."""
    cores = core_decomposition(adjacency)
    return max(cores.values(), default=0)


class DecrementalCore:
    """Maintain a k-core under edge deletions with cascading evictions.

    The structure is seeded with the adjacency of an *already peeled*
    k-core (every vertex has degree >= k).  Each :meth:`delete_pair` call
    removes one static edge and cascades removals of vertices whose degree
    drops below ``k``; evicted vertices are reported to the optional
    ``on_evict`` callback, which is how the decremental core-time scan
    learns each vertex's core time.

    Deleting all edges costs ``O(n + m)`` in total.
    """

    __slots__ = ("k", "_adj", "_members", "_on_evict")

    def __init__(
        self,
        core_adjacency: Mapping[int, set[int]],
        k: int,
        on_evict: Callable[[int], None] | None = None,
    ):
        self.k = k
        # Copy: the cascade mutates adjacency sets.
        self._adj: dict[int, set[int]] = {u: set(neigh) for u, neigh in core_adjacency.items()}
        self._members: set[int] = set(self._adj)
        self._on_evict = on_evict
        for u, neigh in self._adj.items():
            if len(neigh) < k:
                raise ValueError(
                    f"vertex {u} has degree {len(neigh)} < k={k}; seed with a peeled core"
                )

    @property
    def members(self) -> set[int]:
        """Current k-core members (live view; do not mutate)."""
        return self._members

    def __contains__(self, u: int) -> bool:
        return u in self._members

    def __len__(self) -> int:
        return len(self._members)

    def neighbours(self, u: int) -> set[int]:
        return self._adj.get(u, set())

    def delete_pair(self, u: int, v: int) -> list[int]:
        """Delete static edge ``{u, v}`` and cascade; returns evicted vertices.

        Deleting a pair not present (e.g. an endpoint already evicted) is a
        no-op, which lets callers replay temporal edge deletions without
        tracking liveness themselves.
        """
        if u not in self._members or v not in self._members:
            return []
        adj_u = self._adj[u]
        if v not in adj_u:
            return []
        adj_u.discard(v)
        self._adj[v].discard(u)
        evicted: list[int] = []
        queue = deque(w for w in (u, v) if len(self._adj[w]) < self.k)
        while queue:
            w = queue.popleft()
            if w not in self._members:
                continue
            self._members.discard(w)
            evicted.append(w)
            if self._on_evict is not None:
                self._on_evict(w)
            for x in self._adj.pop(w):
                if x in self._members:
                    adj_x = self._adj[x]
                    adj_x.discard(w)
                    if len(adj_x) < self.k:
                        queue.append(x)
        return evicted

    def delete_pairs(self, pairs: Iterable[tuple[int, int]]) -> list[int]:
        """Delete several static edges; returns all evicted vertices."""
        evicted: list[int] = []
        for u, v in pairs:
            evicted.extend(self.delete_pair(u, v))
        return evicted
