"""Temporal graph substrate: storage, snapshots, static cores, generators, I/O."""

from repro.graph.generators import (
    BurstyConfig,
    chung_lu_temporal,
    generate_bursty,
    planted_bursts,
    uniform_random_temporal,
)
from repro.graph.io import dump_edge_list, load_edge_list, loads_edge_list
from repro.graph.metrics import (
    TemporalMetrics,
    activity_profile,
    burstiness,
    compute_temporal_metrics,
    degree_histogram,
    timestamp_histogram,
)
from repro.graph.csr import CompiledGraph, compile_graph
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import (
    DecrementalCore,
    core_decomposition,
    kmax_of,
    peel_k_core,
    snapshot_k_core,
)
from repro.graph.temporal_graph import TemporalEdge, TemporalGraph
from repro.graph.validation import (
    check_graph_invariants,
    exact_core_edge_ids,
    is_k_core_subgraph,
    tightest_time_interval,
)

__all__ = [
    "BurstyConfig",
    "CompiledGraph",
    "DecrementalCore",
    "Snapshot",
    "TemporalMetrics",
    "TemporalEdge",
    "TemporalGraph",
    "activity_profile",
    "burstiness",
    "check_graph_invariants",
    "chung_lu_temporal",
    "compile_graph",
    "compute_temporal_metrics",
    "core_decomposition",
    "degree_histogram",
    "dump_edge_list",
    "exact_core_edge_ids",
    "generate_bursty",
    "is_k_core_subgraph",
    "kmax_of",
    "load_edge_list",
    "loads_edge_list",
    "peel_k_core",
    "planted_bursts",
    "snapshot_k_core",
    "timestamp_histogram",
    "tightest_time_interval",
    "uniform_random_temporal",
]
