"""repro — temporal k-core enumeration.

A complete, pure-Python reproduction of *"Accelerating K-Core Computation
in Temporal Graphs"* (EDBT 2026): the CoreTime / edge-core-window-skyline
pipeline and the result-size-optimal Enum algorithm, together with the
OTCD state-of-the-art baseline, a brute-force oracle, historical k-core
queries, synthetic stand-ins for the paper's fourteen datasets, and a
benchmark harness that regenerates every figure and table of the
evaluation section.

Quickstart::

    from repro import TemporalGraph, TimeRangeCoreQuery

    graph = TemporalGraph([("a", "b", 1), ("b", "c", 1), ("a", "c", 2)])
    result = TimeRangeCoreQuery(graph, k=2, time_range=(1, 2)).run()
    for core in result:
        print(core.tti, core.edge_triples(graph))
"""

from repro.core import (
    CoreIndex,
    CoreIndexRegistry,
    StreamingCoreService,
    CoreTimeResult,
    EdgeCoreSkyline,
    ENGINES,
    EnumerationResult,
    TemporalKCore,
    TimeRangeCoreQuery,
    VertexCoreTimeIndex,
    build_core_indexes,
    compute_core_times,
    compute_core_times_multi,
    compute_vertex_core_times,
    enumerate_temporal_kcores,
    enumerate_temporal_kcores_base,
)
from repro.baselines import enumerate_bruteforce, enumerate_otcd, PHCIndex
from repro.errors import (
    BenchmarkError,
    DatasetError,
    EmptyGraphError,
    GraphFormatError,
    InvalidParameterError,
    ReproError,
    StoreCorruptionError,
    StoreError,
)
from repro.graph import TemporalEdge, TemporalGraph
from repro.store import IndexStore

__version__ = "1.0.0"

__all__ = [
    "BenchmarkError",
    "CoreIndex",
    "CoreIndexRegistry",
    "CoreTimeResult",
    "DatasetError",
    "EdgeCoreSkyline",
    "ENGINES",
    "EmptyGraphError",
    "EnumerationResult",
    "GraphFormatError",
    "IndexStore",
    "InvalidParameterError",
    "PHCIndex",
    "ReproError",
    "StoreCorruptionError",
    "StoreError",
    "StreamingCoreService",
    "TemporalEdge",
    "TemporalGraph",
    "TemporalKCore",
    "TimeRangeCoreQuery",
    "VertexCoreTimeIndex",
    "build_core_indexes",
    "compute_core_times",
    "compute_core_times_multi",
    "compute_vertex_core_times",
    "enumerate_bruteforce",
    "enumerate_otcd",
    "enumerate_temporal_kcores",
    "enumerate_temporal_kcores_base",
    "__version__",
]
