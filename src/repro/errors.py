"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when an edge-list file or edge iterable is malformed."""


class InvalidParameterError(ReproError):
    """Raised when a query or algorithm parameter is out of range.

    Examples: ``k < 1``, an empty time range, or a range that lies outside
    the graph's normalised timestamp span.
    """


class EmptyGraphError(ReproError):
    """Raised when an operation requires a non-empty temporal graph."""


class DatasetError(ReproError):
    """Raised when a dataset recipe is unknown or cannot be generated."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness on misconfiguration."""


class StoreError(ReproError):
    """Raised by the on-disk index store on unusable files or inputs.

    Examples: a path that is not a store blob, an unsupported format
    version, or a graph whose labels cannot be persisted.
    """


class StoreCorruptionError(StoreError):
    """Raised when a store file fails integrity checks.

    Covers truncation (the payload is shorter than the header declares)
    and checksum mismatches.  Callers on the serving path treat this as
    "entry absent" and rebuild rather than serve corrupt data.
    """
